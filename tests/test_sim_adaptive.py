"""Adaptive sampling and variance reduction (:mod:`repro.sim.adaptive`).

Covers the contract the optimisation rests on: the disabled path is
bit-identical to the pre-adaptive samplers (golden checksums captured
before the module existed), variance-reduced estimators stay unbiased
(hypothesis, against the exact analytical means), CI-targeted stopping
respects its bounds and delivers its target, and the cache treats
adaptive cells budget-independently.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import (
    AntitheticGenerator,
    CITarget,
    SampleCache,
    SimulationParams,
    adaptive_samples,
    engine_samples,
    evaluate_grid,
    sample_technique,
    sweep,
    sweep_mttf,
)
from repro.sim.adaptive import UniformPool, pair_means
from repro.sim.analytical import expected_time
from repro.sim.samplers import EXTENDED_TECHNIQUES


def _digest(samples: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(samples).tobytes()
    ).hexdigest()[:16]


BASE = SimulationParams(mttf=20.0, runs=4000, seed=7)

#: sha256 prefixes of every sampler's output, captured on the pre-adaptive
#: tree.  Any drift here means the default path is no longer bit-identical
#: to the samplers this repo's figures were generated with.
GOLDEN = {
    ("base", "retrying"): "050f5b8cd995389a",
    ("base", "checkpointing"): "4a8bbd9eeb3a68bd",
    ("base", "replication"): "e6723e3bdb980069",
    ("base", "replication_checkpointing"): "6c8d6424dc51e18c",
    ("base", "backoff_retry"): "ab08d2cf47d3ba28",
    ("downtime_exp", "retrying"): "1faf87a5b680946e",
    ("downtime_exp", "checkpointing"): "2622d8aabc70b017",
    ("downtime_exp", "replication"): "70dde97b1330fcce",
    ("downtime_exp", "replication_checkpointing"): "eaeea5da7a230c08",
    ("downtime_exp", "backoff_retry"): "f90531e8a26a8de7",
    ("downtime_fixed", "retrying"): "8128d5ea58529e80",
    ("downtime_fixed", "checkpointing"): "89e51f3adc3f9f1f",
    ("downtime_fixed", "replication"): "94837e313fb66265",
    ("downtime_fixed", "replication_checkpointing"): "ba50258f25d919db",
    ("downtime_fixed", "backoff_retry"): "8247947ff288703e",
    ("no_downtime_fixed_dist", "retrying"): "64293648e3c54c93",
    ("no_downtime_fixed_dist", "checkpointing"): "02809f88d676d58e",
    ("no_downtime_fixed_dist", "replication"): "5e9a37d0344128ff",
    ("no_downtime_fixed_dist", "replication_checkpointing"): "079bb9715af9d8b2",
    ("no_downtime_fixed_dist", "backoff_retry"): "7cd000fcefc1e20e",
}

CONFIGS = {
    "base": BASE,
    "downtime_exp": dataclasses.replace(BASE, downtime=30.0),
    "downtime_fixed": dataclasses.replace(
        BASE, downtime=30.0, downtime_distribution="fixed"
    ),
    "no_downtime_fixed_dist": SimulationParams(
        mttf=15.0,
        downtime=0.0,
        downtime_distribution="fixed",
        runs=4000,
        seed=7,
    ),
}


class TestBitIdentity:
    @pytest.mark.parametrize("config", sorted(CONFIGS))
    @pytest.mark.parametrize("technique", EXTENDED_TECHNIQUES)
    def test_samplers_match_pre_adaptive_golden(self, config, technique):
        samples = sample_technique(technique, CONFIGS[config])
        assert _digest(samples) == GOLDEN[(config, technique)]

    @pytest.mark.parametrize("technique", EXTENDED_TECHNIQUES)
    def test_disabled_adaptive_path_is_the_plain_sampler(self, technique):
        cell = adaptive_samples(technique, BASE)
        assert _digest(cell.samples) == GOLDEN[("base", technique)]
        assert cell.converged
        assert cell.boundaries == (4000,)

    def test_sweep_mttf_disabled_kwargs_change_nothing(self):
        plain = sweep_mttf(BASE, [10.0, 20.0], ["retrying"])
        routed = sweep_mttf(
            BASE,
            [10.0, 20.0],
            ["retrying"],
            target_ci=None,
            variance_reduction=None,
        )
        assert plain["retrying"].y == routed["retrying"].y


class TestCITarget:
    def test_of_normalises(self):
        assert CITarget.of(None) is None
        t = CITarget.of(0.05)
        assert t.rel == 0.05 and t.abs is None
        assert CITarget.of(t) is t
        with pytest.raises(SimulationError):
            CITarget.of("0.05")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rel": None, "abs": None},
            {"rel": -0.1},
            {"abs": 0.0},
            {"min_runs": 1},
            {"min_runs": 100, "max_runs": 50},
            {"growth": 1.0},
            {"confidence": 0.73},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(SimulationError):
            CITarget(**kwargs)

    def test_batch_schedule_is_geometric_and_capped(self):
        t = CITarget(rel=0.01, min_runs=500, max_runs=3000, growth=2.0)
        assert t.batch_sizes() == [500, 500, 1000, 1000]
        assert t.boundaries_for(2000) == (500, 500, 1000)
        # A vector truncated by a *different* max_runs still replays.
        assert t.boundaries_for(1500) == (500, 500, 500)

    def test_stopping_respects_bounds_and_target(self):
        loose = CITarget(rel=0.9, min_runs=500, max_runs=32000)
        cell = adaptive_samples("retrying", BASE, target=loose)
        assert cell.samples.size == 500  # stops at the floor, never below
        assert cell.converged

        tight = CITarget(rel=1e-7, min_runs=500, max_runs=2000)
        cell = adaptive_samples("retrying", BASE, target=tight)
        assert cell.samples.size == 2000  # the ceiling, never beyond
        assert not cell.converged

        mid = CITarget(rel=0.05, min_runs=500, max_runs=64000)
        cell = adaptive_samples("retrying", BASE, target=mid)
        assert 500 <= cell.samples.size <= 64000
        assert cell.converged
        assert cell.summary.rel_halfwidth <= 0.05

    @pytest.mark.parametrize("mode", [None, "antithetic", "crn"])
    def test_delivered_halfwidth_meets_target(self, mode):
        target = CITarget(rel=0.03, min_runs=500, max_runs=128000)
        grid = evaluate_grid(
            BASE,
            [10.0, 40.0],
            ["retrying", "checkpointing"],
            target=target,
            variance_reduction=mode,
        )
        assert grid.all_converged
        for cell in grid.cells.values():
            assert cell.summary.rel_halfwidth <= 0.03


class TestVarianceReductionKernels:
    def test_antithetic_mirrors_uniform_pairs(self):
        gen = AntitheticGenerator(np.random.default_rng(0))
        draws = gen.exponential(1.0, size=6)
        # exp(-x) recovers 1-u, and the mirror draw used u itself, so the
        # survival probabilities of each (fresh, mirror) pair sum to 1.
        survival = np.exp(-draws)
        np.testing.assert_allclose(survival[:3] + survival[3:], 1.0, atol=1e-12)

    def test_antithetic_marginals_are_exact_exponentials(self):
        gen = AntitheticGenerator(np.random.default_rng(3))
        draws = gen.exponential(5.0, size=200_000)
        assert abs(draws.mean() - 5.0) < 0.1
        assert abs(np.median(draws) - 5.0 * np.log(2)) < 0.1

    def test_pair_means_layout(self):
        np.testing.assert_array_equal(
            pair_means(np.array([1.0, 2.0, 3.0, 4.0])), [2.0, 3.0]
        )
        # Odd batch: element i pairs with i + ceil(n/2); the middle fresh
        # draw stays a singleton, preserving the mean exactly.
        np.testing.assert_array_equal(
            pair_means(np.array([1.0, 2.0, 3.0, 4.0, 5.0])), [2.5, 3.5, 3.0]
        )

    def test_antithetic_summary_preserves_mean_and_reports_ess(self):
        cell = adaptive_samples(
            "checkpointing", BASE, variance_reduction="antithetic"
        )
        assert cell.summary.mean == pytest.approx(float(cell.samples.mean()))
        assert cell.summary.ess > 0
        assert cell.summary.ci_halfwidth > 0

    def test_crn_is_deterministic(self):
        a = adaptive_samples("retrying", BASE, variance_reduction="crn")
        b = adaptive_samples("retrying", BASE, variance_reduction="crn")
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_crn_correlates_mttf_points(self):
        # checkpointing consumes a deterministic number of uniforms per
        # run, so replaying one pool from position zero aligns runs
        # one-to-one across MTTF points (techniques with data-dependent
        # consumption desynchronise and only keep batch-level sharing).
        grid = evaluate_grid(
            BASE, [15.0, 20.0], ["checkpointing"], variance_reduction="crn"
        )
        x = grid.cells[("checkpointing", 15.0)].samples
        y = grid.cells[("checkpointing", 20.0)].samples
        assert np.corrcoef(x, y)[0, 1] > 0.5
        # The point of CRN: the *difference* of the two curves is far less
        # noisy than independent sampling would make it.
        assert np.var(x - y) < 0.25 * (np.var(x) + np.var(y))

    def test_uniform_pool_is_stable_under_growth(self):
        pool = UniformPool(np.random.SeedSequence(42))
        head = pool.take(0, 100).copy()
        pool.take(0, 500_000)  # force several extensions
        np.testing.assert_array_equal(pool.take(0, 100), head)

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError):
            adaptive_samples("retrying", BASE, variance_reduction="qmc")


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    technique=st.sampled_from(["retrying", "checkpointing"]),
    mode=st.sampled_from(["antithetic", "crn"]),
)
def test_variance_reduced_estimators_are_unbiased(seed, technique, mode):
    """Antithetic and CRN estimates must agree with the *exact* analytical
    mean within their own confidence interval (5x slack keeps the 8-example
    hypothesis run deterministic-in-practice)."""
    params = SimulationParams(mttf=20.0, runs=8000, seed=seed)
    cell = adaptive_samples(technique, params, variance_reduction=mode)
    truth = expected_time(params, technique)
    assert abs(cell.summary.mean - truth) <= 5.0 * cell.summary.ci_halfwidth


class TestAdaptiveCache:
    def test_budget_independent_hit(self, tmp_path):
        store = SampleCache(tmp_path)
        small = CITarget(rel=0.05, min_runs=500, max_runs=8000)
        first = adaptive_samples(
            "retrying", BASE, target=small, cache=store
        )
        assert first.converged and not first.cached
        # A *larger* budget must still hit: the cell already satisfies the
        # CI target, so max_runs plays no part in the key.
        big = CITarget(rel=0.05, min_runs=500, max_runs=512_000)
        second = adaptive_samples("retrying", BASE, target=big, cache=store)
        assert second.cached
        np.testing.assert_array_equal(first.samples, second.samples)
        assert second.summary.ci_halfwidth == first.summary.ci_halfwidth

    def test_exhausted_cell_reused_only_within_budget(self, tmp_path):
        store = SampleCache(tmp_path)
        impossible = CITarget(rel=1e-7, min_runs=500, max_runs=2000)
        first = adaptive_samples(
            "retrying", BASE, target=impossible, cache=store
        )
        assert not first.converged and first.samples.size == 2000
        # Same budget: the stored vector already spent it — hit.
        again = adaptive_samples(
            "retrying", BASE, target=impossible, cache=store
        )
        assert again.cached and again.samples.size == 2000
        # A larger budget can refine further — the stale vector must NOT
        # be served.
        more = CITarget(rel=1e-7, min_runs=500, max_runs=8000)
        refined = adaptive_samples(
            "retrying", BASE, target=more, cache=store
        )
        assert not refined.cached and refined.samples.size == 8000

    def test_modes_never_share_entries(self, tmp_path):
        store = SampleCache(tmp_path)
        target = CITarget(rel=0.5, min_runs=500, max_runs=2000)
        plain = adaptive_samples("retrying", BASE, target=target, cache=store)
        crn = adaptive_samples(
            "retrying",
            BASE,
            target=target,
            variance_reduction="crn",
            cache=store,
        )
        assert not crn.cached
        assert not np.array_equal(plain.samples, crn.samples)


class TestEngineAdaptive:
    def test_adaptive_vector_is_prefix_of_fixed(self):
        params = SimulationParams(mttf=20.0, runs=100, seed=11)
        fixed = engine_samples("retrying", params, runs=40)
        loose = CITarget(rel=0.9, min_runs=10, max_runs=40)
        adaptive = engine_samples("retrying", params, runs=40, target_ci=loose)
        assert adaptive.size == 10
        np.testing.assert_array_equal(adaptive, fixed[:10])

    def test_bare_float_target_uses_runs_as_ceiling(self):
        params = SimulationParams(mttf=20.0, runs=100, seed=11)
        samples = engine_samples(
            "retrying", params, runs=24, target_ci=1e-9
        )
        assert samples.size == 24  # budget exhausted, never exceeded

    def test_engine_adaptive_cache_hit(self, tmp_path):
        store = SampleCache(tmp_path)
        params = SimulationParams(mttf=20.0, runs=100, seed=11)
        loose = CITarget(rel=0.9, min_runs=10, max_runs=40)
        first = engine_samples(
            "retrying", params, runs=40, target_ci=loose, cache=store
        )
        before = store.stats()["hits"]
        second = engine_samples(
            "retrying", params, runs=40, target_ci=loose, cache=store
        )
        assert store.stats()["hits"] == before + 1
        np.testing.assert_array_equal(first, second)


class TestDeclarativeSweep:
    def params_of(self, n):
        return dataclasses.replace(BASE, replicas=int(n), runs=2000)

    def test_matches_direct_sampling(self):
        series = sweep(
            [1, 2, 3],
            technique="replication",
            params_of=self.params_of,
            label="replicas",
        )
        expected = [
            float(sample_technique("replication", self.params_of(n)).mean())
            for n in (1, 2, 3)
        ]
        assert list(series.y) == expected

    def test_jobs_bit_identical(self):
        seq = sweep(
            [1, 3],
            technique="replication",
            params_of=self.params_of,
            label="replicas",
        )
        par = sweep(
            [1, 3],
            technique="replication",
            params_of=self.params_of,
            label="replicas",
            jobs=2,
        )
        assert seq.y == par.y

    def test_cache_round_trip(self, tmp_path):
        store = SampleCache(tmp_path)
        first = sweep(
            [1, 2],
            technique="replication",
            params_of=self.params_of,
            label="replicas",
            cache=store,
        )
        assert store.stats()["stores"] == 2
        second = sweep(
            [1, 2],
            technique="replication",
            params_of=self.params_of,
            label="replicas",
            cache=store,
        )
        assert store.stats()["hits"] == 2
        assert first.y == second.y

    def test_argument_validation(self):
        with pytest.raises(SimulationError):
            sweep([1.0], lambda x: np.ones(3), label="x", technique="retrying")
        with pytest.raises(SimulationError):
            sweep([1.0], lambda x: np.ones(3), label="x", jobs=2)
        with pytest.raises(SimulationError):
            sweep([1.0], label="x")
        with pytest.raises(SimulationError):
            sweep([1.0], label="x", technique="retrying")


class TestCLIFlags:
    def test_mc_target_ci_json(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "mc",
                    "--technique",
                    "checkpointing",
                    "--runs",
                    "4000",
                    "--target-ci",
                    "0.05",
                    "--min-runs",
                    "500",
                    "--json",
                ]
            )
            == 0
        )
        [row] = json.loads(capsys.readouterr().out)
        assert row["converged"]
        assert row["runs"] <= 4000
        assert row["rel_ci"] <= 0.05

    def test_mc_vr_flags_conflict(self, capsys):
        from repro.cli import main

        assert main(["mc", "--antithetic", "--crn", "--runs", "100"]) == 2
        assert main(["mc", "--engine", "--antithetic", "--runs", "10"]) == 2

    def test_mc_engine_reports_budget_exhaustion(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "mc",
                    "--engine",
                    "--technique",
                    "checkpointing",
                    "--runs",
                    "20",
                    "--target-ci",
                    "1e-9",
                    "--min-runs",
                    "10",
                    "--json",
                ]
            )
            == 0
        )
        [row] = json.loads(capsys.readouterr().out)
        assert row["runs"] == 20
        assert not row["converged"]  # engine path must not fake convergence

    def test_sweep_subcommand_csv(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "sweep",
                    "--technique",
                    "retrying",
                    "--mttfs",
                    "10,20",
                    "--runs",
                    "2000",
                    "--target-ci",
                    "0.1",
                    "--crn",
                    "--csv",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out.strip().splitlines()
        assert out[0].startswith("mttf,")
        assert len(out) == 3
