"""Unit tests for the XML WPDL parser, including the paper's examples."""

from __future__ import annotations

import pytest

from repro.core.policy import ReplicationMode
from repro.errors import ParseError, ValidationError
from repro.wpdl.model import ConditionKind, JoinMode
from repro.wpdl.parser import parse_wpdl, parse_wpdl_file

# The paper's Figure 2 fragment, completed into a full document.
FIGURE2 = """
<Workflow name='retry-example'>
  <Activity name='summation' max_tries='3' interval='10'>
    <Input name='x' value='42' type='int'/>
    <Output>total</Output>
    <Implement>sum</Implement>
  </Activity>
  <Program name='sum'>
    <Option hostname='bolas.isi.edu' service='jobmanager'
            executableDir='/XML/EXAMPLE/' executable='sum'/>
  </Program>
</Workflow>
"""

# The paper's Figure 3 fragment (replication).
FIGURE3 = """
<Workflow name='replica-example'>
  <Activity name='summation' policy='replica'>
    <Implement>sum</Implement>
  </Activity>
  <Program name='sum'>
    <Option hostname='bolas.isi.edu'/>
    <Option hostname='vanuatu.isi.edu'/>
    <Option hostname='jupiter.isi.edu'/>
  </Program>
</Workflow>
"""


class TestPaperExamples:
    def test_figure2_retrying(self):
        wf = parse_wpdl(FIGURE2)
        act = wf.node("summation")
        assert act.policy.max_tries == 3
        assert act.policy.interval == 10.0
        assert act.inputs[0].value == 42
        assert act.outputs == ("total",)
        option = wf.programs["sum"].options[0]
        assert option.hostname == "bolas.isi.edu"
        assert option.executable_dir == "/XML/EXAMPLE/"

    def test_figure3_replication(self):
        wf = parse_wpdl(FIGURE3)
        act = wf.node("summation")
        assert act.policy.replication is ReplicationMode.REPLICA
        assert len(wf.programs["sum"].options) == 3


class TestAttributes:
    def test_unlimited_max_tries(self):
        wf = parse_wpdl(
            "<Workflow name='w'>"
            "<Activity name='t' max_tries='unlimited'><Implement>p</Implement></Activity>"
            "<Program name='p'><Option hostname='h'/></Program>"
            "</Workflow>"
        )
        assert wf.node("t").policy.max_tries is None

    def test_join_or(self):
        wf = parse_wpdl(
            "<Workflow name='w'><Activity name='t' join='or'/></Workflow>"
        )
        assert wf.node("t").join is JoinMode.OR

    def test_retry_on_exception_flag(self):
        wf = parse_wpdl(
            "<Workflow name='w'>"
            "<Activity name='t' retry_on_exception='true'/></Workflow>"
        )
        assert wf.node("t").policy.retry_on_exception

    def test_backoff_attributes_parsed(self):
        wf = parse_wpdl(
            "<Workflow name='w'>"
            "<Activity name='t' max_tries='unlimited' interval='1.0'"
            " backoff='2.0' max_interval='8.0'>"
            "<Implement>p</Implement></Activity>"
            "<Program name='p'><Option hostname='h'/></Program>"
            "</Workflow>"
        )
        policy = wf.node("t").policy
        assert policy.uses_backoff
        assert policy.backoff_factor == 2.0
        assert policy.max_interval == 8.0
        assert policy.retry_delay(3) == 4.0

    def test_combined_replication_checkpointing_retry_parsed(self):
        wf = parse_wpdl(
            "<Workflow name='w'>"
            "<Activity name='t' policy='replica' max_tries='3' interval='1.0'>"
            "<Implement>p</Implement></Activity>"
            "<Program name='p'>"
            "<Option hostname='h1'/><Option hostname='h2'/>"
            "</Program>"
            "</Workflow>"
        )
        policy = wf.node("t").policy
        assert policy.techniques() == ("replication", "checkpointing", "retrying")

    def test_bad_backoff_rejected(self):
        with pytest.raises(ParseError, match="backoff"):
            parse_wpdl(
                "<Workflow name='w'><Activity name='t' backoff='fast'/></Workflow>"
            )

    def test_bad_max_interval_rejected(self):
        with pytest.raises(ParseError, match="max_interval"):
            parse_wpdl(
                "<Workflow name='w'>"
                "<Activity name='t' max_interval='soon'/></Workflow>"
            )

    def test_bad_max_tries_rejected(self):
        with pytest.raises(ParseError, match="max_tries"):
            parse_wpdl("<Workflow name='w'><Activity name='t' max_tries='lots'/></Workflow>")

    def test_bad_policy_rejected(self):
        with pytest.raises(ParseError, match="policy"):
            parse_wpdl("<Workflow name='w'><Activity name='t' policy='clone'/></Workflow>")

    def test_bad_join_rejected(self):
        with pytest.raises(ParseError, match="join"):
            parse_wpdl("<Workflow name='w'><Activity name='t' join='xor'/></Workflow>")


class TestTransitions:
    def wrap(self, transitions):
        return parse_wpdl(
            "<Workflow name='w'>"
            "<Activity name='a'/><Activity name='b'/>"
            f"{transitions}"
            "</Workflow>"
        )

    def test_done_default(self):
        wf = self.wrap("<Transition from='a' to='b'/>")
        assert wf.transitions[0].condition.kind is ConditionKind.DONE

    def test_failed(self):
        wf = self.wrap("<Transition from='a' to='b' on='failed'/>")
        assert wf.transitions[0].condition.kind is ConditionKind.FAILED

    def test_always(self):
        wf = self.wrap("<Transition from='a' to='b' on='always'/>")
        assert wf.transitions[0].condition.kind is ConditionKind.ALWAYS

    def test_exception_with_pattern(self):
        wf = self.wrap(
            "<Transition from='a' to='b' on='exception' exception='disk_full'/>"
        )
        cond = wf.transitions[0].condition
        assert cond.kind is ConditionKind.EXCEPTION
        assert cond.exception == "disk_full"

    def test_exception_without_pattern_rejected(self):
        with pytest.raises(ParseError, match="exception"):
            self.wrap("<Transition from='a' to='b' on='exception'/>")

    def test_expr_condition(self):
        wf = self.wrap("<Transition from='a' to='b' condition='a &gt; 10'/>")
        cond = wf.transitions[0].condition
        assert cond.kind is ConditionKind.EXPR and cond.expr == "a > 10"

    def test_on_and_condition_exclusive(self):
        with pytest.raises(ParseError, match="mutually exclusive"):
            self.wrap("<Transition from='a' to='b' on='failed' condition='x'/>")

    def test_unknown_on_rejected(self):
        with pytest.raises(ParseError, match="unknown on"):
            self.wrap("<Transition from='a' to='b' on='sometimes'/>")

    def test_missing_endpoints_rejected(self):
        with pytest.raises(ParseError):
            self.wrap("<Transition from='a'/>")


class TestVariablesAndLoops:
    def test_typed_variables(self):
        wf = parse_wpdl(
            "<Workflow name='w'>"
            "<Variables>"
            "<Variable name='s' value='hi'/>"
            "<Variable name='i' value='3' type='int'/>"
            "<Variable name='f' value='0.5' type='float'/>"
            "<Variable name='b' value='true' type='bool'/>"
            "<Variable name='n' type='none'/>"
            "</Variables>"
            "<Activity name='t'/>"
            "</Workflow>"
        )
        assert wf.variables == {"s": "hi", "i": 3, "f": 0.5, "b": True, "n": None}

    def test_unknown_type_rejected(self):
        with pytest.raises(ParseError, match="unknown value type"):
            parse_wpdl(
                "<Workflow name='w'><Variables>"
                "<Variable name='x' value='1' type='decimal'/></Variables>"
                "<Activity name='t'/></Workflow>"
            )

    def test_loop_with_body(self):
        wf = parse_wpdl(
            "<Workflow name='w'>"
            "<Loop name='refine' condition='residual &gt; 0.1' max_iterations='5'>"
            "<Body name='refine_body'><Activity name='solve'/></Body>"
            "</Loop>"
            "</Workflow>"
        )
        loop = wf.node("refine")
        assert loop.condition == "residual > 0.1"
        assert loop.max_iterations == 5
        assert "solve" in loop.body.nodes

    def test_loop_requires_single_body(self):
        with pytest.raises(ParseError, match="exactly one"):
            parse_wpdl(
                "<Workflow name='w'>"
                "<Loop name='l' condition='x'></Loop>"
                "</Workflow>"
            )

    def test_ref_input_value_dependency(self):
        wf = parse_wpdl(
            "<Workflow name='w'>"
            "<Activity name='a'><Output>total</Output></Activity>"
            "<Activity name='b'><Input name='x' ref='total'/></Activity>"
            "<Transition from='a' to='b'/>"
            "</Workflow>"
        )
        assert wf.node("b").inputs[0].ref == "total"

    def test_ref_and_value_exclusive(self):
        with pytest.raises(ParseError, match="mutually exclusive"):
            parse_wpdl(
                "<Workflow name='w'><Activity name='b'>"
                "<Input name='x' ref='r' value='1'/></Activity></Workflow>"
            )


class TestDocumentErrors:
    def test_not_xml(self):
        with pytest.raises(ParseError, match="not well-formed"):
            parse_wpdl("this is not xml")

    def test_wrong_root(self):
        with pytest.raises(ParseError, match="root element"):
            parse_wpdl("<Pipeline name='w'/>")

    def test_unexpected_element(self):
        with pytest.raises(ParseError, match="unexpected element"):
            parse_wpdl("<Workflow name='w'><Task name='t'/></Workflow>")

    def test_duplicate_activity(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_wpdl(
                "<Workflow name='w'><Activity name='t'/><Activity name='t'/></Workflow>"
            )

    def test_duplicate_program(self):
        with pytest.raises(ParseError, match="duplicate program"):
            parse_wpdl(
                "<Workflow name='w'><Activity name='t'/>"
                "<Program name='p'><Option hostname='h'/></Program>"
                "<Program name='p'><Option hostname='h'/></Program>"
                "</Workflow>"
            )

    def test_validation_runs_by_default(self):
        # Transition to an unknown node passes parsing but fails validation.
        with pytest.raises(ValidationError):
            parse_wpdl(
                "<Workflow name='w'><Activity name='a'/>"
                "<Transition from='a' to='ghost'/></Workflow>"
            )

    def test_validation_can_be_skipped(self):
        wf = parse_wpdl(
            "<Workflow name='w'><Activity name='a'/>"
            "<Transition from='a' to='ghost'/></Workflow>",
            validate_graph=False,
        )
        assert wf.name == "w"

    def test_parse_file(self, tmp_path):
        path = tmp_path / "wf.xml"
        path.write_text(FIGURE2)
        assert parse_wpdl_file(path).name == "retry-example"

    def test_parse_missing_file(self, tmp_path):
        with pytest.raises(ParseError, match="cannot read"):
            parse_wpdl_file(tmp_path / "missing.xml")


class TestTimeoutAttribute:
    def test_timeout_parsed_as_attempt_timeout(self):
        wf = parse_wpdl(
            "<Workflow name='w'>"
            "<Activity name='t' timeout='30.5'/></Workflow>"
        )
        assert wf.node("t").policy.attempt_timeout == 30.5

    def test_missing_timeout_is_none(self):
        wf = parse_wpdl("<Workflow name='w'><Activity name='t'/></Workflow>")
        assert wf.node("t").policy.attempt_timeout is None

    def test_bad_timeout_rejected(self):
        with pytest.raises(ParseError, match="timeout"):
            parse_wpdl(
                "<Workflow name='w'><Activity name='t' timeout='soon'/></Workflow>"
            )

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ParseError):
            parse_wpdl(
                "<Workflow name='w'><Activity name='t' timeout='0'/></Workflow>"
            )
