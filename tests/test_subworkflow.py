"""Tests for hierarchical composition (SubWorkflow nodes)."""

from __future__ import annotations

import pytest

from repro.engine import NodeStatus, WorkflowEngine, WorkflowStatus
from repro.errors import ParseError, SpecificationError
from repro.grid import (
    RELIABLE,
    CrashingTask,
    FixedDurationTask,
    GridConfig,
    SimulatedGrid,
)
from repro.wpdl import (
    JoinMode,
    SubWorkflow,
    WorkflowBuilder,
    parse_wpdl,
    serialize_wpdl,
)
from repro.wpdl.schema import check_vocabulary
from repro.wpdl.validator import validation_problems


def inner_pipeline(crashing=False):
    builder = WorkflowBuilder("stage").program("step", hosts=["h1"])
    builder.activity("s1", implement="step", outputs=["n"])
    builder.activity("s2", implement="crash" if crashing else "step")
    if crashing:
        builder.program("crash", hosts=["h1"])
    builder.transition("s1", "s2")
    return builder.build()


def make_grid():
    grid = SimulatedGrid(config=GridConfig(heartbeats=False))
    grid.add_host(RELIABLE("h1"))
    grid.install("h1", "step", FixedDurationTask(5.0, result={"n": 7}))
    grid.install(
        "h1", "crash", CrashingTask(duration=5.0, crash_at=1.0, crashes=None)
    )
    grid.install("h1", "alt", FixedDurationTask(11.0))
    return grid


class TestModel:
    def test_requires_name(self):
        with pytest.raises(SpecificationError):
            SubWorkflow(name="", body=inner_pipeline())

    def test_xml_roundtrip(self):
        wf = (
            WorkflowBuilder("outer")
            .subworkflow("stage", inner_pipeline(), join=JoinMode.OR)
            .build()
        )
        text = serialize_wpdl(wf)
        assert "<SubWorkflow" in text
        assert parse_wpdl(text) == wf
        assert check_vocabulary(text) == []

    def test_parse_requires_single_body(self):
        with pytest.raises(ParseError, match="exactly one"):
            parse_wpdl(
                "<Workflow name='w'><SubWorkflow name='s'/></Workflow>"
            )

    def test_body_validated_recursively(self):
        bad_inner = (
            WorkflowBuilder("bad")
            .activity("t", implement="missing")
            .build(validate_graph=False)
        )
        wf = (
            WorkflowBuilder("outer")
            .subworkflow("stage", bad_inner)
            .build(validate_graph=False)
        )
        assert any("unknown program" in p for p in validation_problems(wf))

    def test_listing_helper(self):
        wf = WorkflowBuilder("o").subworkflow("s", inner_pipeline()).build()
        assert [s.name for s in wf.subworkflows()] == ["s"]


class TestEngine:
    def test_runs_body_once_and_merges_outputs(self):
        wf = (
            WorkflowBuilder("outer")
            .program("post", hosts=["h1"])
            .subworkflow("stage", inner_pipeline())
            .activity("post", implement="post")
            .transition("stage", "post")
            .build()
        )
        grid = make_grid()
        grid.install("h1", "post", FixedDurationTask(3.0))
        result = WorkflowEngine(wf, grid, reactor=grid.reactor).run()
        assert result.succeeded
        assert result.completion_time == pytest.approx(13.0)
        assert result.variables["n"] == 7  # body output visible outside
        assert result.node_statuses["stage"] is NodeStatus.DONE

    def test_body_failure_fails_the_node(self):
        wf = (
            WorkflowBuilder("outer")
            .subworkflow("stage", inner_pipeline(crashing=True))
            .build()
        )
        grid = make_grid()
        result = WorkflowEngine(wf, grid, reactor=grid.reactor).run()
        assert result.status is WorkflowStatus.FAILED
        assert result.node_statuses["stage"] is NodeStatus.FAILED

    def test_failed_subworkflow_caught_by_alternative_task(self):
        wf = (
            WorkflowBuilder("outer")
            .program("alt", hosts=["h1"])
            .subworkflow("stage", inner_pipeline(crashing=True))
            .activity("fallback", implement="alt")
            .dummy("join", join=JoinMode.OR)
            .transition("stage", "join")
            .on_failure("stage", "fallback")
            .transition("fallback", "join")
            .build()
        )
        grid = make_grid()
        result = WorkflowEngine(wf, grid, reactor=grid.reactor).run()
        assert result.succeeded
        assert result.node_statuses["stage"] is NodeStatus.FAILED
        assert result.node_statuses["fallback"] is NodeStatus.DONE
        # stage body: s1 (5) + s2 crash (1); then fallback (11).
        assert result.completion_time == pytest.approx(17.0)

    def test_nested_subworkflows(self):
        innermost = inner_pipeline()
        middle = (
            WorkflowBuilder("middle").subworkflow("deep", innermost).build()
        )
        outer = (
            WorkflowBuilder("outer").subworkflow("mid", middle).build()
        )
        grid = make_grid()
        result = WorkflowEngine(outer, grid, reactor=grid.reactor).run()
        assert result.succeeded
        assert result.completion_time == pytest.approx(10.0)

    def test_losing_subworkflow_branch_cancelled(self):
        slow_inner = (
            WorkflowBuilder("slow_stage")
            .program("slowstep", hosts=["h1"])
            .activity("s", implement="slowstep")
            .build()
        )
        wf = (
            WorkflowBuilder("race")
            .program("quick", hosts=["h1"])
            .dummy("split")
            .activity("fast_path", implement="quick")
            .subworkflow("slow_path", slow_inner)
            .dummy("join", join=JoinMode.OR)
            .fan_out("split", "fast_path", "slow_path")
            .fan_in("join", "fast_path", "slow_path")
            .build()
        )
        grid = make_grid()
        grid.install("h1", "quick", FixedDurationTask(2.0))
        grid.install("h1", "slowstep", FixedDurationTask(50.0))
        result = WorkflowEngine(wf, grid, reactor=grid.reactor).run()
        assert result.succeeded
        assert result.completion_time == pytest.approx(2.0)
        assert result.node_statuses["slow_path"] is NodeStatus.CANCELLED
