"""Tests for execution reports (node table + ASCII Gantt)."""

from __future__ import annotations

import pytest

from tests.helpers import fig4_workflow, two_reliable_hosts
from repro.cli import main
from repro.engine import WorkflowEngine
from repro.grid import CrashingTask, FixedDurationTask
from repro.report import gantt, node_table, run_report


@pytest.fixture
def finished_instance(quiet_grid):
    two_reliable_hosts(quiet_grid)
    quiet_grid.install(
        "u1", "fast", CrashingTask(duration=30.0, crash_at=10.0, crashes=None)
    )
    quiet_grid.install("r1", "slow", FixedDurationTask(150.0))
    engine = WorkflowEngine(fig4_workflow(), quiet_grid, reactor=quiet_grid.reactor)
    engine.run(timeout=1e7)
    return engine.instance


class TestNodeTable:
    def test_lists_every_node_with_status(self, finished_instance):
        table = node_table(finished_instance)
        for name in ("FU", "SR", "Join"):
            assert name in table
        assert "failed" in table and "done" in table

    def test_durations_and_tries(self, finished_instance):
        table = node_table(finished_instance)
        assert "150.00" in table  # SR duration
        lines = [ln for ln in table.splitlines() if ln.startswith("FU")]
        assert lines and " 2" in lines[0]  # 2 tries


class TestGantt:
    def test_bars_encode_status(self, finished_instance):
        chart = gantt(finished_instance)
        fu_line = next(ln for ln in chart.splitlines() if ln.startswith("FU"))
        sr_line = next(ln for ln in chart.splitlines() if ln.startswith("SR"))
        assert "x" in fu_line  # failed bar
        assert "#" in sr_line  # done bar

    def test_alternative_task_starts_after_failure(self, finished_instance):
        chart = gantt(finished_instance, width=40)
        fu_line = next(ln for ln in chart.splitlines() if ln.startswith("FU"))
        sr_line = next(ln for ln in chart.splitlines() if ln.startswith("SR"))
        fu_end = fu_line.rindex("x")
        sr_start = sr_line.index("#")
        assert sr_start >= fu_end  # SR's bar begins where FU's ends

    def test_empty_instance(self, quiet_grid):
        from repro.engine.instance import WorkflowInstance

        instance = WorkflowInstance(fig4_workflow())
        assert "no node ever started" in gantt(instance)

    def test_skipped_nodes_listed_without_bars(self, quiet_grid):
        two_reliable_hosts(quiet_grid)
        quiet_grid.install("u1", "fast", FixedDurationTask(30.0))
        quiet_grid.install("r1", "slow", FixedDurationTask(150.0))
        engine = WorkflowEngine(
            fig4_workflow(), quiet_grid, reactor=quiet_grid.reactor
        )
        engine.run()
        chart = gantt(engine.instance)
        sr_line = next(ln for ln in chart.splitlines() if ln.startswith("SR"))
        assert "skipped_ok" in sr_line
        assert "#" not in sr_line


class TestRunReport:
    def test_combines_verdict_table_and_timeline(self, finished_instance):
        report = run_report(finished_instance)
        assert "workflow 'fig4': done" in report
        assert "completion time" in report
        assert "node" in report and "|" in report


class TestCliIntegration:
    def test_cli_report_flag(self, tmp_path, capsys):
        import json

        wf = tmp_path / "wf.xml"
        wf.write_text(
            "<Workflow name='w'>"
            "<Activity name='t'><Implement>job</Implement></Activity>"
            "<Program name='job'><Option hostname='h'/></Program>"
            "</Workflow>"
        )
        grid = tmp_path / "grid.json"
        grid.write_text(
            json.dumps(
                {
                    "hosts": [{"hostname": "h", "reliable": True}],
                    "software": [
                        {
                            "executable": "job",
                            "behavior": {"type": "fixed", "duration": 5.0},
                        }
                    ],
                }
            )
        )
        assert main(["run", str(wf), "--grid", str(grid), "--report"]) == 0
        out = capsys.readouterr().out
        assert "workflow 'w': done" in out
        assert "|" in out  # the Gantt frame
