"""Unit tests for simulated task behaviours (plan generation)."""

from __future__ import annotations

import pytest

from repro.grid.behaviors import (
    CheckpointingTask,
    CrashingTask,
    ExceptionProneTask,
    FixedDurationTask,
    FlakyTask,
    PlanContext,
    Step,
)
from repro.grid.random import RandomStreams
from repro.grid.resource import RELIABLE


def ctx(attempt=1, checkpoint_state=None, job="job-1", seed=7):
    return PlanContext(
        activity="act",
        job_id=job,
        host=RELIABLE("h1"),
        attempt=attempt,
        streams=RandomStreams(seed=seed),
        checkpoint_state=checkpoint_state,
    )


class TestStep:
    def test_rejects_negative_offset(self):
        with pytest.raises(ValueError):
            Step(-1.0, "start")

    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError):
            Step(0.0, "explode")


class TestFixedDuration:
    def test_plan_shape(self):
        plan = FixedDurationTask(30.0, result="r").plan(ctx())
        assert [s.action for s in plan] == ["start", "end"]
        assert plan[-1].offset == 30.0
        assert plan[-1].payload["result"] == "r"

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            FixedDurationTask(-1.0)


class TestCheckpointing:
    def test_fresh_plan_has_k_checkpoints_and_overhead(self):
        task = CheckpointingTask(duration=30.0, checkpoints=3, overhead=0.5)
        plan = task.plan(ctx())
        actions = [s.action for s in plan]
        assert actions == ["start", "checkpoint", "checkpoint", "checkpoint", "end"]
        # Each segment is 10 + 0.5; total 31.5.
        assert plan[-1].offset == pytest.approx(31.5)
        assert plan[1].offset == pytest.approx(10.5)
        assert plan[1].payload["state"] == {"segments_done": 1}
        assert plan[1].payload["progress"] == pytest.approx(1 / 3)

    def test_resume_skips_done_segments_and_pays_recovery(self):
        task = CheckpointingTask(
            duration=30.0, checkpoints=3, overhead=0.5, recovery_time=2.0
        )
        plan = task.plan(ctx(checkpoint_state={"segments_done": 2}))
        actions = [s.action for s in plan]
        assert actions == ["start", "checkpoint", "end"]
        # R + one segment (10 + 0.5).
        assert plan[-1].offset == pytest.approx(12.5)

    def test_resume_with_all_segments_done_ends_after_recovery(self):
        task = CheckpointingTask(duration=30.0, checkpoints=3, recovery_time=1.0)
        plan = task.plan(ctx(checkpoint_state={"segments_done": 3}))
        assert [s.action for s in plan] == ["start", "end"]
        assert plan[-1].offset == pytest.approx(1.0)

    def test_corrupt_state_clamped(self):
        task = CheckpointingTask(duration=30.0, checkpoints=3)
        plan = task.plan(ctx(checkpoint_state={"segments_done": 99}))
        assert plan[-1].action == "end"

    def test_segment_length_property(self):
        assert CheckpointingTask(30.0, 20).segment_length == pytest.approx(1.5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CheckpointingTask(duration=0.0, checkpoints=5)
        with pytest.raises(ValueError):
            CheckpointingTask(duration=10.0, checkpoints=0)
        with pytest.raises(ValueError):
            CheckpointingTask(duration=10.0, checkpoints=2, overhead=-1.0)


class TestExceptionProne:
    def test_p_zero_always_succeeds(self):
        task = ExceptionProneTask(duration=30.0, checks=5, probability=0.0)
        plan = task.plan(ctx())
        assert plan[-1].action == "end"
        assert plan[-1].offset == pytest.approx(30.0)

    def test_p_one_fails_at_first_check(self):
        task = ExceptionProneTask(duration=30.0, checks=5, probability=1.0)
        plan = task.plan(ctx())
        assert plan[-1].action == "exception"
        assert plan[-1].offset == pytest.approx(6.0)
        exc = plan[-1].payload["exception"]
        assert exc.name == "disk_full"
        assert exc.data["check"] == 1

    def test_checkpointable_variant_saves_after_each_check(self):
        task = ExceptionProneTask(
            duration=30.0, checks=5, probability=0.0, checkpointable=True
        )
        plan = task.plan(ctx())
        checkpoints = [s for s in plan if s.action == "checkpoint"]
        assert len(checkpoints) == 5
        assert checkpoints[0].payload["state"] == {"checks_done": 1}

    def test_checkpointable_resume_skips_passed_checks(self):
        task = ExceptionProneTask(
            duration=30.0, checks=5, probability=0.0, checkpointable=True
        )
        plan = task.plan(ctx(checkpoint_state={"checks_done": 4}))
        assert sum(1 for s in plan if s.action == "checkpoint") == 1
        assert plan[-1].offset == pytest.approx(6.0)

    def test_different_attempts_draw_independently(self):
        task = ExceptionProneTask(duration=30.0, checks=1, probability=0.5)
        outcomes = {
            task.plan(ctx(job=f"job-{i}"))[-1].action for i in range(60)
        }
        assert outcomes == {"end", "exception"}

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            ExceptionProneTask(duration=10.0, checks=2, probability=1.5)


class TestCrashing:
    def test_crashes_on_first_attempts_then_succeeds(self):
        task = CrashingTask(duration=30.0, crash_at=5.0, crashes=2)
        assert task.plan(ctx(attempt=1))[-1].action == "crash"
        assert task.plan(ctx(attempt=2))[-1].action == "crash"
        assert task.plan(ctx(attempt=3))[-1].action == "end"

    def test_crashes_forever_with_none(self):
        task = CrashingTask(duration=30.0, crash_at=5.0, crashes=None)
        assert task.plan(ctx(attempt=100))[-1].action == "crash"

    def test_crash_at_bounds_checked(self):
        with pytest.raises(ValueError):
            CrashingTask(duration=10.0, crash_at=11.0)


class TestFlaky:
    def test_probability_zero_never_crashes(self):
        task = FlakyTask(duration=10.0, crash_probability=0.0)
        assert task.plan(ctx())[-1].action == "end"

    def test_probability_one_always_crashes_within_duration(self):
        task = FlakyTask(duration=10.0, crash_probability=1.0)
        plan = task.plan(ctx())
        assert plan[-1].action == "crash"
        assert 0.0 <= plan[-1].offset <= 10.0

    def test_same_context_is_deterministic(self):
        task = FlakyTask(duration=10.0, crash_probability=0.5)
        p1 = task.plan(ctx(seed=9))
        p2 = task.plan(ctx(seed=9))
        assert [(s.offset, s.action) for s in p1] == [(s.offset, s.action) for s in p2]
