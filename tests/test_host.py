"""Unit tests for the simulated host lifecycle."""

from __future__ import annotations

import pytest

from repro.detection.messages import Heartbeat
from repro.errors import GridError, UnknownExecutableError
from repro.grid.behaviors import FixedDurationTask
from repro.grid.host import Host, HostState
from repro.grid.network import Network
from repro.grid.random import RandomStreams
from repro.grid.resource import RELIABLE, UNRELIABLE


@pytest.fixture
def net(kernel):
    return Network(kernel, RandomStreams(seed=5))


def make_host(kernel, net, spec, **kwargs):
    return Host(kernel, net, RandomStreams(seed=5), spec, **kwargs)


class TestLifecycle:
    def test_reliable_host_never_crashes(self, kernel, net):
        host = make_host(kernel, net, RELIABLE("n1"))
        kernel.run_until(10_000.0)
        assert host.up and host.crash_count == 0

    def test_unreliable_host_crashes_and_recovers(self, kernel, net):
        host = make_host(kernel, net, UNRELIABLE("n1", mttf=50.0, mean_downtime=5.0))
        kernel.run_until(5_000.0)
        assert host.crash_count > 10  # ~100 expected

    def test_crash_rate_approximates_mttf(self, kernel, net):
        host = make_host(kernel, net, UNRELIABLE("n1", mttf=50.0))
        horizon = 50_000.0
        kernel.run_until(horizon)
        expected = horizon / 50.0
        assert 0.8 * expected < host.crash_count < 1.2 * expected

    def test_forced_crash_and_recover(self, kernel, net):
        host = make_host(kernel, net, RELIABLE("n1"))
        host.crash(schedule_recovery=False)
        assert host.state is HostState.DOWN
        host.recover()
        assert host.state is HostState.UP

    def test_crash_idempotent_when_down(self, kernel, net):
        host = make_host(kernel, net, RELIABLE("n1"))
        host.crash(schedule_recovery=False)
        host.crash(schedule_recovery=False)
        assert host.crash_count == 1

    def test_crash_and_recover_listeners(self, kernel, net):
        host = make_host(kernel, net, RELIABLE("n1"))
        events = []
        host.on_crash(lambda h: events.append("crash"))
        host.on_recover(lambda h: events.append("recover"))
        host.crash(schedule_recovery=False)
        host.recover()
        assert events == ["crash", "recover"]


class TestHeartbeats:
    def test_heartbeats_emitted_while_up(self, kernel, net):
        beats = []
        net.connect(lambda m: beats.append(m) if isinstance(m, Heartbeat) else None)
        make_host(kernel, net, RELIABLE("n1", heartbeat_period=1.0))
        kernel.run_until(5.0)
        assert len(beats) == 6  # immediate + 5 periodic
        assert [b.seq for b in beats] == list(range(6))

    def test_heartbeats_stop_while_down(self, kernel, net):
        beats = []
        net.connect(lambda m: beats.append(m) if isinstance(m, Heartbeat) else None)
        host = make_host(kernel, net, RELIABLE("n1", heartbeat_period=1.0))
        kernel.schedule(2.5, lambda: host.crash(schedule_recovery=False))
        kernel.run_until(10.0)
        assert beats[-1].sent_at <= 2.5

    def test_heartbeats_resume_on_recovery(self, kernel, net):
        beats = []
        net.connect(lambda m: beats.append(m) if isinstance(m, Heartbeat) else None)
        host = make_host(kernel, net, RELIABLE("n1", heartbeat_period=1.0))
        kernel.schedule(2.5, lambda: host.crash(schedule_recovery=False))
        kernel.schedule(6.0, host.recover)
        kernel.run_until(9.0)
        post_recovery = [b for b in beats if b.sent_at >= 6.0]
        assert len(post_recovery) >= 3

    def test_heartbeats_can_be_disabled(self, kernel, net):
        beats = []
        net.connect(lambda m: beats.append(m))
        make_host(kernel, net, RELIABLE("n1"), heartbeats_enabled=False)
        kernel.run_until(10.0)
        assert beats == []


class TestSoftware:
    def test_install_and_resolve(self, kernel, net):
        host = make_host(kernel, net, RELIABLE("n1"))
        behavior = FixedDurationTask(1.0)
        host.install("sum", behavior)
        assert host.resolve("sum") is behavior

    def test_resolve_unknown_raises(self, kernel, net):
        host = make_host(kernel, net, RELIABLE("n1"))
        with pytest.raises(UnknownExecutableError):
            host.resolve("missing")

    def test_empty_name_rejected(self, kernel, net):
        host = make_host(kernel, net, RELIABLE("n1"))
        with pytest.raises(GridError):
            host.install("", FixedDurationTask(1.0))
