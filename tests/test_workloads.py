"""Tests for the synthetic workload generators."""

from __future__ import annotations

import pytest

from repro.engine import WorkflowEngine
from repro.errors import SpecificationError
from repro.grid import GridConfig, SimulatedGrid
from repro.workloads import chain, diamond_ladder, fork_join, layered_dag
from repro.wpdl.validator import validation_problems


def run(workflow, setup):
    grid = setup(SimulatedGrid(config=GridConfig(heartbeats=False)))
    return WorkflowEngine(workflow, grid, reactor=grid.reactor).run(timeout=1e8)


class TestChain:
    def test_structure(self):
        wf, _ = chain(5)
        assert len(wf.nodes) == 5
        assert len(wf.transitions) == 4
        assert validation_problems(wf) == []

    def test_runs_in_serial_time(self):
        wf, setup = chain(10, task_duration=2.0)
        result = run(wf, setup)
        assert result.succeeded
        assert result.completion_time == pytest.approx(20.0)

    def test_invalid_size(self):
        with pytest.raises(SpecificationError):
            chain(0)


class TestForkJoin:
    def test_structure(self):
        wf, _ = fork_join(8)
        assert len(wf.nodes) == 10  # split + 8 + join
        assert len(wf.incoming("join")) == 8

    def test_runs_in_parallel_time(self):
        wf, setup = fork_join(16, task_duration=3.0)
        result = run(wf, setup)
        assert result.succeeded
        # All branches run concurrently (simulated hosts have no queueing).
        assert result.completion_time == pytest.approx(3.0)

    def test_invalid_width(self):
        with pytest.raises(SpecificationError):
            fork_join(0)


class TestLayeredDag:
    def test_structure_is_valid_and_deterministic(self):
        wf1, _ = layered_dag(4, 5, seed=3)
        wf2, _ = layered_dag(4, 5, seed=3)
        assert wf1 == wf2
        assert validation_problems(wf1) == []
        assert len(wf1.nodes) == 4 * 5 + 2  # + source/sink

    def test_different_seed_changes_wiring(self):
        wf1, _ = layered_dag(4, 5, seed=1)
        wf2, _ = layered_dag(4, 5, seed=2)
        assert wf1.transitions != wf2.transitions

    def test_single_entry_and_exit(self):
        wf, _ = layered_dag(3, 4, seed=0)
        assert wf.entry_nodes() == ["source"]
        assert wf.exit_nodes() == ["sink"]

    def test_runs_to_completion(self):
        wf, setup = layered_dag(5, 4, seed=7, task_duration=1.0)
        result = run(wf, setup)
        assert result.succeeded
        # Critical path is at most one task per layer deep.
        assert result.completion_time <= 5.0 + 1e-9
        assert result.completion_time >= 5.0 - 1e-9  # every layer depends up


class TestDiamondLadder:
    def test_structure(self):
        wf, _ = diamond_ladder(3)
        assert len(wf.nodes) == 12
        assert validation_problems(wf) == []

    def test_completion_time(self):
        wf, setup = diamond_ladder(4, task_duration=2.0)
        result = run(wf, setup)
        assert result.succeeded
        # Each rung contributes one parallel task layer.
        assert result.completion_time == pytest.approx(8.0)
