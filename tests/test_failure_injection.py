"""Failure-injection suite: partitions, message loss, cascades, and storm
scenarios driven through the full engine stack."""

from __future__ import annotations

import pytest

from repro.core import FailurePolicy, ResourceSelection
from repro.engine import NodeStatus, WorkflowEngine, WorkflowStatus
from repro.grid import (
    RELIABLE,
    UNRELIABLE,
    FailureEvent,
    FailureScript,
    FixedDurationTask,
    GridConfig,
    SimulatedGrid,
    inject_partition,
)
from repro.wpdl import WorkflowBuilder


def single_task(policy=None, hosts=("h1",)):
    return (
        WorkflowBuilder("inj")
        .program("task", hosts=list(hosts))
        .activity("task", implement="task", policy=policy or FailurePolicy())
        .build()
    )


class TestPartitions:
    def test_partition_looks_like_crash_and_retry_recovers(self):
        grid = SimulatedGrid(
            config=GridConfig(crash_detection="heartbeat", heartbeats=True)
        )
        grid.add_host(RELIABLE("h1", heartbeat_period=1.0))
        grid.add_host(RELIABLE("h2", heartbeat_period=1.0))
        grid.install_everywhere("task", FixedDurationTask(30.0))
        # h1 partitioned away mid-run: the host is fine (its task even
        # finishes!) but the client can't see it — indistinguishable from
        # a crash, as the paper notes.
        inject_partition(grid.kernel, grid.network, "h1", at=10.0, duration=100.0)
        wf = single_task(
            policy=FailurePolicy.retrying(
                None, resource_selection=ResourceSelection.ROTATE
            ),
            hosts=("h1", "h2"),
        )
        engine = WorkflowEngine(
            wf, grid, reactor=grid.reactor, heartbeat_timeout=5.0
        )
        result = engine.run(timeout=1e6)
        assert result.succeeded
        # Suspicion at ~15-17.5, rerun on h2 for 30.
        assert 44.0 <= result.completion_time <= 50.0

    def test_healed_partition_revokes_suspicion(self):
        grid = SimulatedGrid(
            config=GridConfig(crash_detection="heartbeat", heartbeats=True)
        )
        grid.add_host(RELIABLE("h1", heartbeat_period=1.0))
        grid.install_everywhere("task", FixedDurationTask(30.0))
        inject_partition(grid.kernel, grid.network, "h1", at=5.0, duration=20.0)
        wf = single_task(policy=FailurePolicy.retrying(None))
        engine = WorkflowEngine(
            wf, grid, reactor=grid.reactor, heartbeat_timeout=8.0
        )
        result = engine.run(timeout=1e6)
        assert result.succeeded
        monitor = engine.runtime.detector.monitor
        assert monitor.false_suspicions >= 1  # h1 was wrongly accused


class TestMessageLoss:
    def test_lossy_network_converges_with_attempt_timeout(self):
        # 20% loss can eat TaskEnd (a success then looks like a crash) or
        # even the Done itself, leaving the attempt forever ACTIVE.  The
        # performance-failure watchdog (attempt_timeout) converts such
        # hangs into ordinary crashes that retrying then masks.
        grid = SimulatedGrid(
            seed=5,
            config=GridConfig(heartbeats=False, message_loss=0.2),
        )
        grid.add_host(RELIABLE("h1"))
        grid.install_everywhere("task", FixedDurationTask(10.0))
        wf = single_task(
            policy=FailurePolicy(max_tries=None, attempt_timeout=25.0)
        )
        result = WorkflowEngine(wf, grid, reactor=grid.reactor).run(timeout=1e6)
        assert result.succeeded

    def test_without_timeout_a_lost_done_wedges_the_attempt(self):
        # The counterpart: no watchdog, deterministic loss of everything.
        grid = SimulatedGrid(
            seed=5,
            config=GridConfig(heartbeats=False, message_loss=0.0),
        )
        grid.add_host(RELIABLE("h1"))
        grid.install_everywhere("task", FixedDurationTask(10.0))
        grid.network.partition("h1")  # drop every host message
        wf = single_task(policy=FailurePolicy.retrying(None))
        engine = WorkflowEngine(wf, grid, reactor=grid.reactor)
        from repro.errors import EngineError

        with pytest.raises(EngineError, match="did not terminate"):
            engine.run(timeout=100.0)

    def test_timeout_declares_performance_failure(self):
        # The paper's linear-solver deadline: a healthy-but-slow task is
        # cancelled at the timeout and the alternative path takes over.
        grid = SimulatedGrid(config=GridConfig(heartbeats=False))
        grid.add_host(RELIABLE("h1"))
        grid.install("h1", "task", FixedDurationTask(1000.0))  # too slow
        wf = single_task(policy=FailurePolicy(max_tries=2, attempt_timeout=30.0))
        result = WorkflowEngine(wf, grid, reactor=grid.reactor).run(timeout=1e6)
        assert result.status is WorkflowStatus.FAILED
        assert result.tries["task"] == 2
        assert result.completion_time == pytest.approx(60.0)


class TestCascades:
    def test_rolling_outage_across_replicas(self):
        # All three replica hosts crash in a rolling wave; each replica
        # retries on its own host, so the task still completes.
        grid = SimulatedGrid(config=GridConfig(heartbeats=False))
        for name in ("r1", "r2", "r3"):
            grid.add_host(RELIABLE(name))
        grid.install_everywhere("task", FixedDurationTask(30.0))
        script = FailureScript(
            [
                FailureEvent(5.0, "r1", "crash"),
                FailureEvent(10.0, "r2", "crash"),
                FailureEvent(15.0, "r3", "crash"),
                FailureEvent(20.0, "r1", "recover"),
                FailureEvent(25.0, "r2", "recover"),
                FailureEvent(30.0, "r3", "recover"),
            ]
        )
        script.arm(grid.kernel, grid.hosts, grid.network)
        wf = single_task(
            policy=FailurePolicy.replica(max_tries=None), hosts=("r1", "r2", "r3")
        )
        result = WorkflowEngine(wf, grid, reactor=grid.reactor).run(timeout=1e6)
        assert result.succeeded
        # r1 recovers first (t=20) and runs clean for 30.
        assert result.completion_time == pytest.approx(50.0)

    def test_simultaneous_crash_of_every_host_fails_bounded_retries(self):
        grid = SimulatedGrid(config=GridConfig(heartbeats=False))
        grid.add_host(RELIABLE("h1"))
        grid.install_everywhere("task", FixedDurationTask(30.0))
        script = FailureScript(
            [
                FailureEvent(5.0, "h1", "crash"),
                FailureEvent(6.0, "h1", "recover"),
                FailureEvent(10.0, "h1", "crash"),
                FailureEvent(11.0, "h1", "recover"),
                FailureEvent(15.0, "h1", "crash"),
                FailureEvent(1000.0, "h1", "recover"),
            ]
        )
        script.arm(grid.kernel, grid.hosts, grid.network)
        wf = single_task(policy=FailurePolicy.retrying(3))
        result = WorkflowEngine(wf, grid, reactor=grid.reactor).run(timeout=1e7)
        assert result.status is WorkflowStatus.FAILED
        assert result.tries["task"] == 3


class TestStorm:
    def test_many_tasks_on_flaky_grid_all_recover(self):
        # 20 independent tasks, 4 volunteer hosts, aggressive failure rates:
        # unlimited retrying must carry every task to completion.
        grid = SimulatedGrid(
            seed=23, config=GridConfig(heartbeats=False)
        )
        for i in range(4):
            grid.add_host(UNRELIABLE(f"v{i}", mttf=10.0, mean_downtime=2.0))
        grid.install_everywhere("task", FixedDurationTask(12.0))
        builder = WorkflowBuilder("storm").program(
            "task", hosts=[f"v{i}" for i in range(4)]
        )
        builder.dummy("start")
        names = [f"t{i:02d}" for i in range(20)]
        for i, name in enumerate(names):
            builder.activity(
                name,
                implement="task",
                policy=FailurePolicy.retrying(
                    None, resource_selection=ResourceSelection.ROTATE
                ),
            )
        builder.dummy("end")
        builder.fan_out("start", *names)
        builder.fan_in("end", *names)
        wf = builder.build()
        result = WorkflowEngine(wf, grid, reactor=grid.reactor).run(timeout=1e7)
        assert result.succeeded
        assert all(
            result.node_statuses[name] is NodeStatus.DONE for name in names
        )
        total_tries = sum(result.tries[name] for name in names)
        assert total_tries > 20  # the storm actually bit
