"""Unit tests for navigation semantics: joins, edge firing, skips, outcome."""

from __future__ import annotations

import pytest

from repro.core.exceptions import UserException
from repro.engine.instance import EdgeState, NodeStatus, WorkflowInstance, WorkflowStatus
from repro.engine.navigator import (
    assert_no_deadlock,
    cancel_node,
    evaluate_outcome,
    fire_outgoing_edges,
    irrelevant_running_nodes,
    propagate_skips,
    ready_nodes,
)
from repro.errors import NavigationError
from repro.wpdl import JoinMode, TransitionCondition, WorkflowBuilder


def finish(instance, name, status, exception=None):
    instance.node(name).status = status
    fire_outgoing_edges(instance, name, status, exception)
    propagate_skips(instance)


class TestReadiness:
    def test_entry_nodes_ready_initially(self):
        wf = WorkflowBuilder("w").dummy("a").dummy("b").transition("a", "b").build()
        inst = WorkflowInstance(wf)
        assert ready_nodes(inst) == ["a"]

    def test_and_join_waits_for_all(self):
        wf = (
            WorkflowBuilder("w")
            .dummy("x").dummy("y").dummy("j")
            .fan_in("j", "x", "y")
            .build()
        )
        inst = WorkflowInstance(wf)
        finish(inst, "x", NodeStatus.DONE)
        assert "j" not in ready_nodes(inst)
        finish(inst, "y", NodeStatus.DONE)
        assert "j" in ready_nodes(inst)

    def test_or_join_fires_on_first(self):
        wf = (
            WorkflowBuilder("w")
            .dummy("x").dummy("y").dummy("j", join=JoinMode.OR)
            .fan_in("j", "x", "y")
            .build()
        )
        inst = WorkflowInstance(wf)
        finish(inst, "x", NodeStatus.DONE)
        assert "j" in ready_nodes(inst)


class TestEdgeFiring:
    def build(self, *conds):
        builder = WorkflowBuilder("w").dummy("src")
        for i, cond in enumerate(conds):
            builder.dummy(f"t{i}").transition("src", f"t{i}", cond)
        return WorkflowInstance(builder.build(validate_graph=False))

    def test_done_fires_done_and_always(self):
        inst = self.build(
            TransitionCondition.done(),
            TransitionCondition.always(),
            TransitionCondition.failed(),
            TransitionCondition.on_exception("oom"),
        )
        fired = fire_outgoing_edges(inst, "src", NodeStatus.DONE)
        assert fired == [0, 1]
        assert inst.edges[2] is EdgeState.DEAD_OK  # moot failure edge
        assert inst.edges[3] is EdgeState.DEAD_OK

    def test_done_evaluates_expr_edges(self):
        inst = self.build(
            TransitionCondition.when("x > 1"),
            TransitionCondition.when("x > 100"),
        )
        inst.variables["x"] = 5
        fired = fire_outgoing_edges(inst, "src", NodeStatus.DONE)
        assert fired == [0]
        assert inst.edges[1] is EdgeState.DEAD_OK

    def test_failed_fires_failed_and_always(self):
        inst = self.build(
            TransitionCondition.done(),
            TransitionCondition.failed(),
            TransitionCondition.always(),
        )
        fired = fire_outgoing_edges(inst, "src", NodeStatus.FAILED)
        assert fired == [1, 2]
        assert inst.edges[0] is EdgeState.DEAD_ERROR

    def test_exception_matches_most_specific(self):
        inst = self.build(
            TransitionCondition.on_exception("disk_*"),
            TransitionCondition.on_exception("disk_full"),
            TransitionCondition.done(),
        )
        fired = fire_outgoing_edges(
            inst, "src", NodeStatus.EXCEPTION, UserException("disk_full")
        )
        assert fired == [1]
        assert inst.edges[0] is EdgeState.DEAD_OK  # out-specialised, benign
        assert inst.edges[2] is EdgeState.DEAD_ERROR

    def test_exception_unmatched_falls_back_to_failed_edge(self):
        inst = self.build(
            TransitionCondition.on_exception("oom"),
            TransitionCondition.failed(),
        )
        fired = fire_outgoing_edges(
            inst, "src", NodeStatus.EXCEPTION, UserException("disk_full")
        )
        assert fired == [1]
        assert inst.edges[0] is EdgeState.DEAD_ERROR

    def test_exception_matched_does_not_fire_failed_edge(self):
        inst = self.build(
            TransitionCondition.on_exception("disk_full"),
            TransitionCondition.failed(),
        )
        fired = fire_outgoing_edges(
            inst, "src", NodeStatus.EXCEPTION, UserException("disk_full")
        )
        assert fired == [0]
        assert inst.edges[1] is EdgeState.DEAD_ERROR

    def test_exception_requires_exception_object(self):
        inst = self.build(TransitionCondition.done())
        with pytest.raises(NavigationError):
            fire_outgoing_edges(inst, "src", NodeStatus.EXCEPTION, None)

    def test_nonterminal_status_rejected(self):
        inst = self.build(TransitionCondition.done())
        with pytest.raises(NavigationError):
            fire_outgoing_edges(inst, "src", NodeStatus.RUNNING)


class TestSkipPropagation:
    def test_and_join_skips_on_any_dead_edge(self):
        wf = (
            WorkflowBuilder("w")
            .dummy("x").dummy("y").dummy("j").dummy("after")
            .fan_in("j", "x", "y")
            .transition("j", "after")
            .build()
        )
        inst = WorkflowInstance(wf)
        finish(inst, "x", NodeStatus.DONE)
        finish(inst, "y", NodeStatus.FAILED)
        assert inst.node("j").status is NodeStatus.SKIPPED_ERROR
        assert inst.node("after").status is NodeStatus.SKIPPED_ERROR

    def test_or_join_skips_only_when_all_dead(self):
        wf = (
            WorkflowBuilder("w")
            .dummy("x").dummy("y").dummy("j", join=JoinMode.OR)
            .fan_in("j", "x", "y")
            .build()
        )
        inst = WorkflowInstance(wf)
        finish(inst, "x", NodeStatus.FAILED)
        assert inst.node("j").status is NodeStatus.PENDING  # y can still save it
        finish(inst, "y", NodeStatus.FAILED)
        assert inst.node("j").status is NodeStatus.SKIPPED_ERROR

    def test_benign_skip_of_untaken_handler(self):
        wf = (
            WorkflowBuilder("w")
            .dummy("a").dummy("handler").dummy("j", join=JoinMode.OR)
            .transition("a", "j")
            .on_failure("a", "handler")
            .transition("handler", "j")
            .build()
        )
        inst = WorkflowInstance(wf)
        finish(inst, "a", NodeStatus.DONE)
        assert inst.node("handler").status is NodeStatus.SKIPPED_OK

    def test_skip_cascades_transitively(self):
        wf = (
            WorkflowBuilder("w")
            .dummy("a").dummy("b").dummy("c").dummy("d")
            .sequence("a", "b", "c", "d")
            .build()
        )
        inst = WorkflowInstance(wf)
        finish(inst, "a", NodeStatus.FAILED)
        for name in ("b", "c", "d"):
            assert inst.node(name).status is NodeStatus.SKIPPED_ERROR


class TestOutcome:
    def test_running_until_terminal(self):
        wf = WorkflowBuilder("w").dummy("a").build()
        inst = WorkflowInstance(wf)
        assert evaluate_outcome(inst) is WorkflowStatus.RUNNING

    def test_all_exits_done_is_success(self):
        wf = WorkflowBuilder("w").dummy("a").dummy("b").transition("a", "b").build()
        inst = WorkflowInstance(wf)
        finish(inst, "a", NodeStatus.DONE)
        finish(inst, "b", NodeStatus.DONE)
        assert evaluate_outcome(inst) is WorkflowStatus.DONE

    def test_exit_benign_skip_is_success(self):
        # Cleanup task that only runs on failure: skipped benignly on the
        # success path, and the workflow still succeeds.
        wf = (
            WorkflowBuilder("w")
            .dummy("a").dummy("done_path").dummy("cleanup")
            .transition("a", "done_path")
            .on_failure("a", "cleanup")
            .build()
        )
        inst = WorkflowInstance(wf)
        finish(inst, "a", NodeStatus.DONE)
        finish(inst, "done_path", NodeStatus.DONE)
        assert inst.node("cleanup").status is NodeStatus.SKIPPED_OK
        assert evaluate_outcome(inst) is WorkflowStatus.DONE

    def test_exit_erroneous_skip_is_failure(self):
        wf = (
            WorkflowBuilder("w")
            .dummy("chain1").dummy("exit1")
            .dummy("chain2").dummy("exit2")
            .transition("chain1", "exit1")
            .transition("chain2", "exit2")
            .build()
        )
        inst = WorkflowInstance(wf)
        finish(inst, "chain1", NodeStatus.DONE)
        finish(inst, "exit1", NodeStatus.DONE)
        finish(inst, "chain2", NodeStatus.FAILED)
        assert evaluate_outcome(inst) is WorkflowStatus.FAILED

    def test_failed_exit_is_failure(self):
        wf = WorkflowBuilder("w").dummy("a").build()
        inst = WorkflowInstance(wf)
        finish(inst, "a", NodeStatus.FAILED)
        assert evaluate_outcome(inst) is WorkflowStatus.FAILED

    def test_all_exits_skipped_benign_is_failure(self):
        # Nothing actually ran to completion: not a success.
        wf = WorkflowBuilder("w").dummy("a").build()
        inst = WorkflowInstance(wf)
        inst.node("a").status = NodeStatus.SKIPPED_OK
        assert evaluate_outcome(inst) is WorkflowStatus.FAILED


class TestCancellation:
    def test_zombie_detection_after_or_join_fires(self):
        wf = (
            WorkflowBuilder("w")
            .dummy("fast").dummy("slow").dummy("j", join=JoinMode.OR)
            .fan_in("j", "fast", "slow")
            .build()
        )
        inst = WorkflowInstance(wf)
        inst.node("fast").status = NodeStatus.RUNNING
        inst.node("slow").status = NodeStatus.RUNNING
        finish(inst, "fast", NodeStatus.DONE)
        inst.node("j").status = NodeStatus.DONE
        assert irrelevant_running_nodes(inst) == ["slow"]
        cancel_node(inst, "slow")
        assert inst.node("slow").status is NodeStatus.CANCELLED
        assert inst.incoming_states("j")[1] is EdgeState.DEAD_OK

    def test_running_node_feeding_pending_target_is_relevant(self):
        wf = WorkflowBuilder("w").dummy("a").dummy("b").transition("a", "b").build()
        inst = WorkflowInstance(wf)
        inst.node("a").status = NodeStatus.RUNNING
        assert irrelevant_running_nodes(inst) == []

    def test_exit_node_always_relevant(self):
        wf = WorkflowBuilder("w").dummy("a").build()
        inst = WorkflowInstance(wf)
        inst.node("a").status = NodeStatus.RUNNING
        assert irrelevant_running_nodes(inst) == []

    def test_cancel_requires_running(self):
        wf = WorkflowBuilder("w").dummy("a").build()
        inst = WorkflowInstance(wf)
        with pytest.raises(NavigationError):
            cancel_node(inst, "a")


class TestDeadlockInvariant:
    def test_consistent_instance_passes(self):
        wf = WorkflowBuilder("w").dummy("a").dummy("b").transition("a", "b").build()
        inst = WorkflowInstance(wf)
        assert_no_deadlock(inst)  # "a" is ready

    def test_detects_impossible_state(self):
        wf = WorkflowBuilder("w").dummy("a").dummy("b").transition("a", "b").build()
        inst = WorkflowInstance(wf)
        # Corrupt: a terminal without firing its edges; b pending forever.
        inst.node("a").status = NodeStatus.DONE
        with pytest.raises(NavigationError, match="deadlock"):
            assert_no_deadlock(inst)
