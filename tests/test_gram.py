"""Unit tests for the GRAM-style submission service on the simulated grid."""

from __future__ import annotations

import pytest

from repro.detection.messages import (
    CheckpointNotice,
    Done,
    ExceptionNotice,
    TaskEnd,
    TaskStart,
)
from repro.errors import GridError
from repro.execution import SubmitRequest
from repro.grid import (
    RELIABLE,
    CheckpointingTask,
    CrashingTask,
    ExceptionProneTask,
    FixedDurationTask,
    GridConfig,
    SimulatedGrid,
)


@pytest.fixture
def grid():
    g = SimulatedGrid(config=GridConfig(heartbeats=False))
    g.add_host(RELIABLE("n1"))
    return g


def collect(grid):
    seen = []
    grid.connect(seen.append)
    return seen


def req(**kwargs):
    defaults = dict(activity="act", executable="task", hostname="n1")
    defaults.update(kwargs)
    return SubmitRequest(**defaults)


class TestHappyPath:
    def test_successful_job_message_sequence(self, grid):
        seen = collect(grid)
        grid.install("n1", "task", FixedDurationTask(10.0, result=5))
        job = grid.submit(req())
        grid.run()
        kinds = [type(m).__name__ for m in seen]
        assert kinds == ["TaskStart", "TaskEnd", "Done"]
        assert seen[1].result == 5
        assert seen[2].exit_code == 0
        assert all(m.job_id == job for m in seen)

    def test_task_end_time_scales_with_host_speed(self):
        grid = SimulatedGrid(config=GridConfig(heartbeats=False))
        grid.add_host(RELIABLE("fast", speed=2.0))
        grid.install("fast", "task", FixedDurationTask(10.0))
        seen = collect(grid)
        grid.submit(req(hostname="fast"))
        grid.run()
        done = [m for m in seen if isinstance(m, Done)][0]
        assert done.sent_at == pytest.approx(5.0)

    def test_job_record_status_transitions(self, grid):
        grid.install("n1", "task", FixedDurationTask(10.0))
        job = grid.submit(req())
        assert grid.gram.job(job).status == "running"
        grid.run()
        assert grid.gram.job(job).status == "finished"


class TestFailures:
    def test_unknown_executable_gets_exit_127(self, grid):
        seen = collect(grid)
        grid.submit(req(executable="missing"))
        grid.run()
        assert len(seen) == 1
        assert isinstance(seen[0], Done) and seen[0].exit_code == 127

    def test_unknown_host_raises(self, grid):
        with pytest.raises(GridError, match="unknown host"):
            grid.submit(req(hostname="ghost"))

    def test_crashing_task_done_without_taskend(self, grid):
        seen = collect(grid)
        grid.install("n1", "task", CrashingTask(duration=10.0, crash_at=3.0))
        grid.submit(req())
        grid.run()
        kinds = [type(m).__name__ for m in seen]
        assert kinds == ["TaskStart", "Done"]
        assert seen[1].exit_code != 0

    def test_exception_task_sends_notice_then_abnormal_done(self, grid):
        seen = collect(grid)
        grid.install(
            "n1", "task", ExceptionProneTask(duration=30.0, checks=5, probability=1.0)
        )
        grid.submit(req())
        grid.run()
        kinds = [type(m).__name__ for m in seen]
        assert kinds == ["TaskStart", "ExceptionNotice", "Done"]
        assert seen[1].exception.name == "disk_full"


class TestHostCrashInteraction:
    def test_prompt_crash_detection_synthesises_done(self, grid):
        seen = collect(grid)
        grid.install("n1", "task", FixedDurationTask(100.0))
        grid.submit(req())
        grid.kernel.schedule(10.0, grid.host("n1").crash)
        grid.kernel.run_until(20.0)
        dones = [m for m in seen if isinstance(m, Done)]
        assert len(dones) == 1
        assert dones[0].host_crashed
        assert dones[0].sent_at == pytest.approx(10.0)

    def test_heartbeat_mode_synthesises_nothing_while_down(self):
        grid = SimulatedGrid(
            config=GridConfig(heartbeats=False, crash_detection="heartbeat")
        )
        grid.add_host(RELIABLE("n1"))
        grid.install("n1", "task", FixedDurationTask(100.0))
        seen = collect(grid)
        grid.submit(req())
        grid.kernel.schedule(
            10.0, lambda: grid.host("n1").crash(schedule_recovery=False)
        )
        grid.kernel.run_until(50.0)
        # Nothing crosses the wire while the host is down — the client can
        # only notice the silence (heartbeat monitor territory).
        assert [type(m).__name__ for m in seen] == ["TaskStart"]

    def test_heartbeat_mode_reports_orphan_on_recovery(self):
        grid = SimulatedGrid(
            config=GridConfig(heartbeats=False, crash_detection="heartbeat")
        )
        grid.add_host(RELIABLE("n1"))
        grid.install("n1", "task", FixedDurationTask(100.0))
        seen = collect(grid)
        grid.submit(req())
        grid.kernel.schedule(
            10.0, lambda: grid.host("n1").crash(schedule_recovery=False)
        )
        grid.kernel.schedule(25.0, grid.host("n1").recover)
        grid.kernel.run_until(50.0)
        # The restarted job manager reports the orphaned job.
        dones = [m for m in seen if isinstance(m, Done)]
        assert len(dones) == 1
        assert dones[0].host_crashed
        assert dones[0].sent_at == pytest.approx(25.0)

    def test_queued_submission_starts_after_recovery(self, grid):
        seen = collect(grid)
        grid.install("n1", "task", FixedDurationTask(10.0))
        host = grid.host("n1")
        host.crash(schedule_recovery=False)
        job = grid.submit(req(queue_when_down=True))
        assert grid.gram.job(job).status == "queued"
        grid.kernel.schedule(5.0, host.recover)
        grid.run()
        starts = [m for m in seen if isinstance(m, TaskStart)]
        assert starts and starts[0].sent_at == pytest.approx(5.0)
        ends = [m for m in seen if isinstance(m, TaskEnd)]
        assert ends and ends[0].sent_at == pytest.approx(15.0)

    def test_rejected_when_not_queueing(self, grid):
        seen = collect(grid)
        grid.install("n1", "task", FixedDurationTask(10.0))
        grid.host("n1").crash(schedule_recovery=False)
        grid.submit(req(queue_when_down=False))
        grid.run()
        dones = [m for m in seen if isinstance(m, Done)]
        assert dones and dones[0].exit_code == 75


class TestCheckpointFlow:
    def test_checkpoint_notices_and_store_writes(self, grid):
        seen = collect(grid)
        grid.install(
            "n1",
            "task",
            CheckpointingTask(duration=10.0, checkpoints=2, overhead=0.5),
        )
        grid.submit(req())
        grid.run()
        notices = [m for m in seen if isinstance(m, CheckpointNotice)]
        assert len(notices) == 2
        # The flags are live store keys.
        state = grid.store.load(notices[-1].flag)
        assert state == {"segments_done": 2}

    def test_resubmission_with_flag_resumes(self, grid):
        seen = collect(grid)
        grid.install(
            "n1",
            "task",
            CheckpointingTask(duration=10.0, checkpoints=2, overhead=0.0,
                              recovery_time=1.0),
        )
        grid.submit(req())
        grid.run()
        flag = [m for m in seen if isinstance(m, CheckpointNotice)][0].flag
        seen.clear()
        grid.submit(req(checkpoint_flag=flag))
        grid.run()
        end = [m for m in seen if isinstance(m, TaskEnd)][0]
        # Resume: R(1.0) + one remaining segment (5.0).
        start_time = [m for m in seen if isinstance(m, TaskStart)][0].sent_at
        assert end.sent_at - start_time == pytest.approx(6.0)

    def test_lost_checkpoint_falls_back_to_cold_start(self, grid):
        seen = collect(grid)
        grid.install(
            "n1", "task", CheckpointingTask(duration=10.0, checkpoints=2, overhead=0.0)
        )
        grid.submit(req(checkpoint_flag="nonexistent"))
        grid.run()
        end = [m for m in seen if isinstance(m, TaskEnd)][0]
        assert end.sent_at == pytest.approx(10.0)


class TestCancel:
    def test_cancel_suppresses_all_further_messages(self, grid):
        seen = collect(grid)
        grid.install("n1", "task", FixedDurationTask(10.0))
        job = grid.submit(req())
        grid.kernel.schedule(5.0, lambda: grid.cancel(job))
        grid.run()
        assert [type(m).__name__ for m in seen] == ["TaskStart"]
        assert grid.gram.job(job).status == "cancelled"

    def test_cancel_unknown_job_is_noop(self, grid):
        grid.cancel("ghost")  # no error

    def test_cancel_queued_job(self, grid):
        grid.install("n1", "task", FixedDurationTask(10.0))
        host = grid.host("n1")
        host.crash(schedule_recovery=False)
        job = grid.submit(req())
        grid.cancel(job)
        host.recover()
        seen = collect(grid)
        grid.run()
        assert seen == []


class TestAttemptNumbers:
    def test_attempts_count_per_activity(self, grid):
        grid.install("n1", "task", CrashingTask(duration=10.0, crash_at=1.0, crashes=2))
        seen = collect(grid)
        for _ in range(3):
            grid.submit(req())
            grid.run()
        # Third attempt succeeds (crashes=2).
        ends = [m for m in seen if isinstance(m, TaskEnd)]
        assert len(ends) == 1
