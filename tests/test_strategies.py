"""Unit tests for the composable recovery-strategy layer.

Covers policy → strategy resolution, decorator composition, the registry's
substitution hooks, backoff delay schedules, and the coordinator consuming
strategies (including a custom resolver injected through the engine API).
"""

from __future__ import annotations

import itertools

import pytest

from repro.ckpt.manager import CheckpointManager
from repro.core.policy import (
    CheckpointConfig,
    FailurePolicy,
    ReplicationConfig,
    ReplicationMode,
    ResourceSelection,
    RetryConfig,
)
from repro.core.states import TaskState
from repro.detection.detector import AttemptOutcome, FailureDetector
from repro.engine.broker import Broker
from repro.engine.recovery import RecoveryCoordinator
from repro.engine.strategies import (
    DEFAULT_REGISTRY,
    CheckpointRestartStrategy,
    ExponentialBackoffRetryStrategy,
    ReplicateStrategy,
    RetryDecision,
    RetryStrategy,
    SlotPlan,
    resolve_strategy,
)
from repro.errors import RecoveryError
from repro.execution import ExecutionService, SubmitRequest
from repro.wpdl.model import Activity, Option, Program


def program(*hosts):
    return Program(name="p", options=tuple(Option(hostname=h) for h in hosts))


def activity(policy, name="act"):
    return Activity(name=name, implement="p", policy=policy)


class TestResolution:
    def test_plain_policy_resolves_to_checkpointed_retry(self):
        # restart_from_checkpoint defaults on, per the paper.
        strategy = resolve_strategy(FailurePolicy.retrying(3))
        assert strategy.describe() == "checkpoint_restart(retry)"

    def test_checkpointing_disabled_leaves_bare_retry(self):
        policy = FailurePolicy.retrying(3).with_checkpointing(False)
        strategy = resolve_strategy(policy)
        assert isinstance(strategy, RetryStrategy)
        assert strategy.describe() == "retry"

    def test_replica_policy_composes_all_three(self):
        strategy = resolve_strategy(FailurePolicy.replica(max_tries=None))
        assert strategy.describe() == "replicate(checkpoint_restart(retry))"

    def test_backoff_policy_selects_backoff_base(self):
        policy = FailurePolicy.backoff_retrying(None, interval=1.0)
        strategy = resolve_strategy(policy.with_checkpointing(False))
        assert isinstance(strategy, ExponentialBackoffRetryStrategy)
        assert strategy.describe() == "backoff_retry"

    def test_full_stack_composition(self):
        policy = FailurePolicy.compose(
            retry=RetryConfig(max_tries=None, interval=1.0, backoff_factor=2.0),
            replication=ReplicationConfig(mode=ReplicationMode.REPLICA),
            checkpoint=CheckpointConfig(restart_from_checkpoint=True),
        )
        strategy = resolve_strategy(policy)
        assert strategy.describe() == (
            "replicate(checkpoint_restart(backoff_retry))"
        )

    def test_composition_mirrors_policy_techniques(self):
        policy = FailurePolicy.replica(max_tries=None)
        strategy = resolve_strategy(policy)
        # techniques() lists outside-in; describe() nests the same order.
        assert policy.techniques() == ("replication", "checkpointing", "retrying")
        assert strategy.describe().startswith("replicate(")


class TestRegistry:
    def test_default_registry_names(self):
        assert set(DEFAULT_REGISTRY.names()) == {
            "retry",
            "backoff_retry",
            "checkpoint_restart",
            "replicate",
        }

    def test_unknown_strategy_rejected_with_listing(self):
        with pytest.raises(RecoveryError) as err:
            DEFAULT_REGISTRY.create("hope")
        assert "retry" in str(err.value)

    def test_copy_isolates_overrides(self):
        class EagerRetry(RetryStrategy):
            name = "retry"

        local = DEFAULT_REGISTRY.copy()
        local.register("retry", EagerRetry)
        assert isinstance(local.create("retry"), EagerRetry)
        assert not isinstance(DEFAULT_REGISTRY.create("retry"), EagerRetry)

    def test_resolution_uses_supplied_registry(self):
        class JitteredBackoff(ExponentialBackoffRetryStrategy):
            pass

        local = DEFAULT_REGISTRY.copy()
        local.register("backoff_retry", JitteredBackoff)
        policy = FailurePolicy.backoff_retrying(None, interval=1.0)
        strategy = resolve_strategy(
            policy.with_checkpointing(False), registry=local
        )
        assert isinstance(strategy, JitteredBackoff)


class TestRetryDecisions:
    def test_budget_exhaustion_returns_none(self):
        strategy = RetryStrategy()
        decision = strategy.next_attempt(
            activity(FailurePolicy.retrying(2)),
            program("h1"),
            Broker(),
            failed_option=0,
            tries_used=2,
        )
        assert decision is None

    def test_same_selection_stays_on_failed_option(self):
        strategy = RetryStrategy()
        decision = strategy.next_attempt(
            activity(FailurePolicy.retrying(5, interval=3.0)),
            program("h1", "h2"),
            Broker(),
            failed_option=0,
            tries_used=1,
        )
        assert decision == RetryDecision(option_index=0, delay=3.0)

    def test_rotate_selection_moves_off_failed_option(self):
        policy = FailurePolicy.retrying(
            5, resource_selection=ResourceSelection.ROTATE
        )
        strategy = RetryStrategy()
        decision = strategy.next_attempt(
            activity(policy),
            program("h1", "h2", "h3"),
            Broker(),
            failed_option=1,
            tries_used=1,
        )
        assert decision.option_index != 1

    def test_backoff_delays_grow_geometrically(self):
        policy = FailurePolicy.backoff_retrying(
            None, interval=1.0, backoff_factor=2.0, max_interval=8.0
        )
        strategy = ExponentialBackoffRetryStrategy()
        delays = [
            strategy.next_attempt(
                activity(policy),
                program("h1"),
                Broker(),
                failed_option=0,
                tries_used=n,
            ).delay
            for n in range(1, 7)
        ]
        assert delays == [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]  # capped at 8

    def test_decorators_delegate_next_attempt(self):
        policy = FailurePolicy.replica(max_tries=3, interval=2.0)
        stack = ReplicateStrategy(CheckpointRestartStrategy(RetryStrategy()))
        decision = stack.next_attempt(
            activity(policy),
            program("h1", "h2"),
            Broker(),
            failed_option=1,
            tries_used=1,
        )
        assert decision == RetryDecision(option_index=1, delay=2.0)


class TestSlotPlanning:
    def test_retry_plans_single_slot(self):
        plans = RetryStrategy().plan_slots(
            activity(FailurePolicy.retrying(3)), program("h1", "h2"), Broker()
        )
        assert plans == [SlotPlan(option_index=0)]

    def test_replicate_plans_one_slot_per_option(self):
        stack = ReplicateStrategy(RetryStrategy())
        plans = stack.plan_slots(
            activity(FailurePolicy.replica()), program("h1", "h2", "h3"), Broker()
        )
        assert [p.option_index for p in plans] == [0, 1, 2]


class TestSubmitFlags:
    def test_bare_retry_never_offers_flag(self):
        checkpoints = CheckpointManager()
        checkpoints.record("act@slot0", "flag-3")
        strategy = RetryStrategy()
        assert (
            strategy.submit_flag(
                activity(FailurePolicy()), checkpoints, "act@slot0"
            )
            is None
        )

    def test_checkpoint_restart_offers_recorded_flag(self):
        checkpoints = CheckpointManager()
        checkpoints.record("act@slot0", "flag-3")
        strategy = CheckpointRestartStrategy(RetryStrategy())
        assert (
            strategy.submit_flag(
                activity(FailurePolicy()), checkpoints, "act@slot0"
            )
            == "flag-3"
        )

    def test_checkpoint_restart_without_record_falls_through(self):
        strategy = CheckpointRestartStrategy(RetryStrategy())
        assert (
            strategy.submit_flag(
                activity(FailurePolicy()), CheckpointManager(), "act@slot0"
            )
            is None
        )

    def test_replicate_delegates_flags_per_slot(self):
        checkpoints = CheckpointManager()
        checkpoints.record("act@slot1", "flag-7")
        stack = ReplicateStrategy(CheckpointRestartStrategy(RetryStrategy()))
        act = activity(FailurePolicy.replica())
        assert stack.submit_flag(act, checkpoints, "act@slot0") is None
        assert stack.submit_flag(act, checkpoints, "act@slot1") == "flag-7"


# ---------------------------------------------------------------------------
# Coordinator integration
# ---------------------------------------------------------------------------


class FakeService(ExecutionService):
    def __init__(self):
        self.submissions: list[SubmitRequest] = []
        self.cancelled: list[str] = []
        self._seq = itertools.count(1)

    def submit(self, request: SubmitRequest) -> str:
        self.submissions.append(request)
        return f"fake-{next(self._seq)}"

    def cancel(self, job_id: str) -> None:
        self.cancelled.append(job_id)

    def connect(self, sink) -> None:  # pragma: no cover - unused here
        pass


def outcome(job_id, state, *, flag=None, result=None):
    return AttemptOutcome(
        job_id=job_id,
        activity="act",
        state=state,
        checkpoint_flag=flag,
        exception=None,
        result=result,
    )


@pytest.fixture
def harness(reactor, bus):
    def build(strategy_resolver=None):
        service = FakeService()
        resolutions = []
        coordinator = RecoveryCoordinator(
            service,
            FailureDetector(reactor, bus),
            Broker(),
            reactor,
            on_resolution=resolutions.append,
            strategy_resolver=strategy_resolver,
        )
        return service, coordinator, resolutions

    return build


class TestCoordinatorIntegration:
    def test_backoff_policy_waits_before_each_retry(self, harness, kernel):
        service, coord, resolutions = harness()
        policy = FailurePolicy.backoff_retrying(4, interval=1.0, backoff_factor=2.0)
        coord.start_activity(activity(policy), program("h1"))
        for retry in range(1, 4):
            coord.handle_outcome(
                outcome(f"fake-{retry}", TaskState.FAILED)
            )
            before = kernel.now()
            kernel.run()
            # n-th retry waits interval * 2**(n-1): 1, 2, 4 seconds.
            assert kernel.now() - before == pytest.approx(2.0 ** (retry - 1))
            assert len(service.submissions) == retry + 1
        coord.handle_outcome(outcome("fake-4", TaskState.DONE))
        assert resolutions[0].state is TaskState.DONE
        assert resolutions[0].tries_used == 4

    def test_custom_resolver_overrides_composition(self, harness):
        class SingleShot(RetryStrategy):
            def next_attempt(self, *args, **kwargs):
                return None  # never retry, whatever the policy says

        service, coord, resolutions = harness(lambda policy: SingleShot())
        coord.start_activity(
            activity(FailurePolicy.retrying(5)), program("h1")
        )
        coord.handle_outcome(outcome("fake-1", TaskState.FAILED))
        assert len(service.submissions) == 1
        assert resolutions[0].state is TaskState.FAILED

    def test_replicated_retry_from_checkpoint_resubmits_with_flag(
        self, harness, kernel
    ):
        service, coord, resolutions = harness()
        policy = FailurePolicy.replica(max_tries=3)
        coord.start_activity(activity(policy), program("h1", "h2"))
        assert len(service.submissions) == 2
        # Replica 0 crashes having checkpointed: its retry carries the flag.
        coord.handle_outcome(outcome("fake-1", TaskState.FAILED, flag="flag-2"))
        kernel.run()
        assert len(service.submissions) == 3
        assert service.submissions[2].checkpoint_flag == "flag-2"
        # The sibling replica never sees replica 0's checkpoint.
        coord.handle_outcome(outcome("fake-2", TaskState.FAILED))
        kernel.run()
        assert len(service.submissions) == 4
        assert service.submissions[3].checkpoint_flag is None
        coord.handle_outcome(outcome("fake-3", TaskState.DONE))
        assert resolutions[0].state is TaskState.DONE
