"""Tests for the command-line interface and the gridspec loader."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import GridError
from repro.gridspec import behavior_from_spec, build_grid, load_gridspec
from repro.grid.behaviors import CheckpointingTask, FixedDurationTask

WORKFLOW_XML = """
<Workflow name='cliwf'>
  <Activity name='summation' max_tries='3'>
    <Output>total</Output>
    <Implement>sum</Implement>
  </Activity>
  <Program name='sum'>
    <Option hostname='n1'/>
  </Program>
</Workflow>
"""

GRIDSPEC = {
    "seed": 7,
    "config": {"heartbeats": False},
    "hosts": [{"hostname": "n1", "reliable": True}],
    "software": [
        {
            "hostname": "*",
            "executable": "sum",
            "behavior": {"type": "fixed", "duration": 30.0, "result": 42},
        }
    ],
}


@pytest.fixture
def workflow_file(tmp_path):
    path = tmp_path / "wf.xml"
    path.write_text(WORKFLOW_XML)
    return path


@pytest.fixture
def grid_file(tmp_path):
    path = tmp_path / "grid.json"
    path.write_text(json.dumps(GRIDSPEC))
    return path


class TestGridspec:
    def test_build_grid_from_spec(self):
        grid = build_grid(GRIDSPEC)
        assert "n1" in grid.hosts
        assert isinstance(grid.host("n1").resolve("sum"), FixedDurationTask)

    def test_load_from_file(self, grid_file):
        grid = load_gridspec(grid_file)
        assert grid.streams.seed == 7

    def test_missing_hosts_rejected(self):
        with pytest.raises(GridError, match="no hosts"):
            build_grid({"hosts": []})

    def test_reliable_and_mttf_exclusive(self):
        with pytest.raises(GridError, match="exclusive"):
            build_grid(
                {"hosts": [{"hostname": "n1", "reliable": True, "mttf": 5}]}
            )

    def test_unknown_behavior_type(self):
        with pytest.raises(GridError, match="unknown behavior"):
            behavior_from_spec({"type": "quantum"})

    def test_behavior_missing_field(self):
        with pytest.raises(GridError, match="missing required field"):
            behavior_from_spec({"type": "fixed"})

    def test_all_behavior_types_constructible(self):
        specs = [
            {"type": "fixed", "duration": 1.0},
            {"type": "checkpointing", "duration": 10.0, "checkpoints": 2},
            {
                "type": "exception_prone",
                "duration": 10.0,
                "checks": 2,
                "probability": 0.5,
            },
            {"type": "crashing", "duration": 10.0, "crash_at": 5.0},
            {"type": "flaky", "duration": 10.0, "crash_probability": 0.5},
        ]
        for spec in specs:
            behavior_from_spec(spec)

    def test_checkpointing_defaults(self):
        behavior = behavior_from_spec(
            {"type": "checkpointing", "duration": 10.0, "checkpoints": 4}
        )
        assert isinstance(behavior, CheckpointingTask)
        assert behavior.overhead == 0.5

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(GridError, match="not valid JSON"):
            load_gridspec(path)

    def test_non_object_json(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(GridError, match="JSON object"):
            load_gridspec(path)


class TestCli:
    def test_validate_ok(self, workflow_file, capsys):
        assert main(["validate", str(workflow_file)]) == 0
        assert "is valid" in capsys.readouterr().out

    def test_validate_reports_problems(self, tmp_path, capsys):
        path = tmp_path / "bad.xml"
        path.write_text(
            "<Workflow name='w'><Activity name='a'/>"
            "<Transition from='a' to='ghost'/></Workflow>"
        )
        assert main(["validate", str(path)]) == 2
        assert "ghost" in capsys.readouterr().out

    def test_lint_clean_and_dirty(self, workflow_file, tmp_path, capsys):
        assert main(["lint", str(workflow_file)]) == 0
        dirty = tmp_path / "dirty.xml"
        dirty.write_text("<Workflow name='w'><Activity name='a' speed='9'/></Workflow>")
        assert main(["lint", str(dirty)]) == 2

    def test_run_success(self, workflow_file, grid_file, capsys):
        code = main(["run", str(workflow_file), "--grid", str(grid_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "done" in out and "30.000" in out

    def test_run_workflow_failure_exit_code(self, tmp_path, grid_file, capsys):
        wf = tmp_path / "fail.xml"
        wf.write_text(
            "<Workflow name='w'>"
            "<Activity name='t'><Implement>missing</Implement></Activity>"
            "<Program name='missing'><Option hostname='n1'/></Program>"
            "</Workflow>"
        )
        assert main(["run", str(wf), "--grid", str(grid_file)]) == 1

    def test_run_with_checkpoint_then_resume(
        self, workflow_file, grid_file, tmp_path, capsys
    ):
        ckpt = tmp_path / "engine.ckpt"
        assert (
            main(
                [
                    "run",
                    str(workflow_file),
                    "--grid",
                    str(grid_file),
                    "--checkpoint",
                    str(ckpt),
                ]
            )
            == 0
        )
        assert ckpt.exists()
        assert main(["resume", str(ckpt), "--grid", str(grid_file)]) == 0

    def test_spec_error_exit_code(self, tmp_path, grid_file, capsys):
        missing = tmp_path / "nope.xml"
        assert main(["run", str(missing), "--grid", str(grid_file)]) == 2
        assert "error:" in capsys.readouterr().err


class TestCliMc:
    def test_sampler_table_output(self, capsys):
        code = main(
            ["mc", "--technique", "retrying", "--mttf", "50", "--runs", "200"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "standalone sampler" in out
        assert "retrying" in out

    def test_engine_json_output(self, capsys):
        code = main(
            [
                "mc",
                "--technique",
                "checkpointing",
                "--runs",
                "5",
                "--engine",
                "--json",
            ]
        )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        row = rows[0]
        assert row["technique"] == "checkpointing"
        assert row["mode"] == "engine"
        assert row["runs"] == 5
        assert row["mean"] > 0

    def test_engine_jobs_value_does_not_change_results(self, capsys):
        args = [
            "mc",
            "--technique",
            "replication",
            "--runs",
            "6",
            "--engine",
            "--json",
        ]
        assert main(args + ["--jobs", "1"]) == 0
        seq = json.loads(capsys.readouterr().out)
        assert main(args + ["--jobs", "3"]) == 0
        par = json.loads(capsys.readouterr().out)
        assert seq == par

    def test_all_techniques_default(self, capsys):
        assert main(["mc", "--runs", "100", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["technique"] for r in rows] == [
            "retrying",
            "checkpointing",
            "replication",
            "replication_checkpointing",
        ]


class TestCliMcTechniqueAliases:
    """Combined-technique spellings resolve through ``_mc_techniques``."""

    def test_combined_aliases_resolve(self, capsys):
        code = main(
            [
                "mc",
                "--technique",
                "replication+checkpointing,retry+backoff",
                "--runs",
                "100",
                "--json",
            ]
        )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["technique"] for r in rows] == [
            "replication_checkpointing",
            "backoff_retry",
        ]

    def test_extended_selects_all_five(self, capsys):
        assert main(["mc", "--technique", "extended", "--runs", "50", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["technique"] for r in rows] == [
            "retrying",
            "checkpointing",
            "replication",
            "replication_checkpointing",
            "backoff_retry",
        ]

    def test_unknown_technique_exits_with_error(self, capsys):
        assert main(["mc", "--technique", "hope", "--runs", "10"]) == 2
        assert "unknown technique" in capsys.readouterr().err

    def test_backoff_flags_reach_sampler(self, capsys):
        # An aggressive cap keeps waits short; just check it runs and labels.
        code = main(
            [
                "mc",
                "--technique",
                "backoff",
                "--runs",
                "200",
                "--mttf",
                "50",
                "--backoff",
                "3.0",
                "--max-interval",
                "0",
            ]
        )
        assert code == 0
        assert "backoff_retry" in capsys.readouterr().out


class TestCliObservability:
    """``run --metrics/--trace`` and ``mc --stats`` exporter plumbing."""

    def test_run_writes_prometheus_and_chrome_trace(
        self, workflow_file, grid_file, tmp_path, capsys
    ):
        prom = tmp_path / "run.prom"
        trace = tmp_path / "run.json"
        code = main(
            [
                "run",
                str(workflow_file),
                "--grid",
                str(grid_file),
                "--metrics",
                str(prom),
                "--trace",
                str(trace),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "metrics written" in out and "trace written" in out
        text = prom.read_text()
        assert "engine_nodes_launched_total" in text
        assert 'engine_workflow_runs_total{status="done"} 1.0' in text
        payload = json.loads(trace.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"workflow.run", "node.run", "task.attempt"} <= names

    def test_run_trace_jsonl_streams_records(
        self, workflow_file, grid_file, tmp_path
    ):
        trace = tmp_path / "run.jsonl"
        code = main(
            ["run", str(workflow_file), "--grid", str(grid_file),
             "--trace", str(trace)]
        )
        assert code == 0
        records = [
            json.loads(line) for line in trace.read_text().splitlines() if line
        ]
        kinds = {r["kind"] for r in records}
        assert {"event", "span", "metrics"} <= kinds

    def test_run_without_flags_writes_nothing(
        self, workflow_file, grid_file, tmp_path, capsys
    ):
        code = main(["run", str(workflow_file), "--grid", str(grid_file)])
        assert code == 0
        assert "metrics written" not in capsys.readouterr().out
        # Only the fixture inputs — no stray metric/trace artefacts.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "grid.json",
            "wf.xml",
        ]

    def test_mc_stats_text_report(self, capsys):
        code = main(
            [
                "mc",
                "--technique",
                "retrying",
                "--runs",
                "5",
                "--engine",
                "--stats",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "run statistics:" in out
        assert "attempts/run: mean=" in out
        assert "pool sampler cache:" in out
        assert "disk sample cache:" in out

    def test_mc_stats_sampler_mode_points_at_engine(self, capsys):
        code = main(
            ["mc", "--technique", "retrying", "--runs", "50", "--stats"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "need --engine" in out

    def test_mc_stats_json_embeds_snapshot(self, capsys):
        code = main(
            [
                "mc",
                "--technique",
                "checkpointing",
                "--runs",
                "4",
                "--engine",
                "--stats",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"][0]["technique"] == "checkpointing"
        families = payload["metrics"]
        assert families["mc_runs_total"]["series"][0]["value"] == 4.0
        [attempts] = families["mc_attempts"]["series"]
        assert attempts["count"] == 4
        assert sum(attempts["counts"]) == attempts["count"]
