"""Unit tests for the two-level recovery coordinator.

Uses a scripted fake execution service so every outcome is hand-delivered:
this isolates the coordinator's decision logic (retry budgets, resource
rotation, replication bookkeeping, checkpoint flags, escalation) from the
grid simulation, which is covered by the end-to-end engine tests.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.exceptions import UserException
from repro.core.policy import FailurePolicy, ResourceSelection
from repro.core.states import TaskState
from repro.detection.detector import AttemptOutcome, FailureDetector
from repro.engine.broker import Broker
from repro.engine.recovery import RecoveryCoordinator
from repro.errors import RecoveryError
from repro.execution import ExecutionService, SubmitRequest
from repro.wpdl.model import Activity, Option, Program


class FakeService(ExecutionService):
    def __init__(self):
        self.submissions: list[SubmitRequest] = []
        self.cancelled: list[str] = []
        self._seq = itertools.count(1)

    def submit(self, request: SubmitRequest) -> str:
        self.submissions.append(request)
        return f"fake-{next(self._seq)}"

    def cancel(self, job_id: str) -> None:
        self.cancelled.append(job_id)

    def connect(self, sink) -> None:  # pragma: no cover - unused here
        pass


@pytest.fixture
def setup(reactor, bus):
    service = FakeService()
    detector = FailureDetector(reactor, bus)
    resolutions = []
    coordinator = RecoveryCoordinator(
        service,
        detector,
        Broker(),
        reactor,
        on_resolution=resolutions.append,
    )
    return service, detector, coordinator, resolutions


def program(*hosts):
    return Program(name="p", options=tuple(Option(hostname=h) for h in hosts))


def activity(policy, name="act"):
    return Activity(name=name, implement="p", policy=policy)


def outcome(job_id, state, *, flag=None, exception=None, result=None):
    return AttemptOutcome(
        job_id=job_id,
        activity="act",
        state=state,
        checkpoint_flag=flag,
        exception=exception,
        result=result,
    )


def last_job(service):
    return f"fake-{len(service.submissions)}"


class TestSingleSlot:
    def test_success_resolves_done(self, setup):
        service, _, coord, resolutions = setup
        coord.start_activity(activity(FailurePolicy()), program("h1"))
        assert len(service.submissions) == 1
        coord.handle_outcome(outcome("fake-1", TaskState.DONE, result=42))
        assert resolutions[0].state is TaskState.DONE
        assert resolutions[0].result == 42
        assert resolutions[0].tries_used == 1

    def test_failure_without_retries_escalates(self, setup):
        _, _, coord, resolutions = setup
        coord.start_activity(activity(FailurePolicy()), program("h1"))
        coord.handle_outcome(outcome("fake-1", TaskState.FAILED))
        assert resolutions[0].state is TaskState.FAILED

    def test_retry_until_budget_exhausted(self, setup, kernel):
        service, _, coord, resolutions = setup
        coord.start_activity(activity(FailurePolicy.retrying(3)), program("h1"))
        for i in range(1, 4):
            coord.handle_outcome(outcome(f"fake-{i}", TaskState.FAILED))
            kernel.run()
        assert len(service.submissions) == 3
        assert resolutions and resolutions[0].state is TaskState.FAILED
        assert resolutions[0].tries_used == 3

    def test_retry_interval_respected(self, setup, kernel):
        service, _, coord, _ = setup
        coord.start_activity(
            activity(FailurePolicy.retrying(2, interval=10.0)), program("h1")
        )
        coord.handle_outcome(outcome("fake-1", TaskState.FAILED))
        kernel.run_until(5.0)
        assert len(service.submissions) == 1  # still waiting
        kernel.run_until(11.0)
        assert len(service.submissions) == 2

    def test_success_after_retry(self, setup, kernel):
        service, _, coord, resolutions = setup
        coord.start_activity(activity(FailurePolicy.retrying(3)), program("h1"))
        coord.handle_outcome(outcome("fake-1", TaskState.FAILED))
        kernel.run()
        coord.handle_outcome(outcome("fake-2", TaskState.DONE))
        assert resolutions[0].state is TaskState.DONE
        assert resolutions[0].tries_used == 2

    def test_rotate_retries_on_other_resource(self, setup, kernel):
        service, _, coord, _ = setup
        policy = FailurePolicy.retrying(
            3, resource_selection=ResourceSelection.ROTATE
        )
        coord.start_activity(activity(policy), program("h1", "h2"))
        assert service.submissions[0].hostname == "h1"
        coord.handle_outcome(outcome("fake-1", TaskState.FAILED))
        kernel.run()
        assert service.submissions[1].hostname == "h2"

    def test_exception_escalates_immediately(self, setup):
        _, _, coord, resolutions = setup
        exc = UserException("disk_full")
        coord.start_activity(activity(FailurePolicy.retrying(5)), program("h1"))
        coord.handle_outcome(outcome("fake-1", TaskState.EXCEPTION, exception=exc))
        assert resolutions[0].state is TaskState.EXCEPTION
        assert resolutions[0].exception is exc
        assert resolutions[0].tries_used == 1  # retries NOT consumed

    def test_retry_on_exception_policy_masks(self, setup, kernel):
        service, _, coord, resolutions = setup
        exc = UserException("disk_full")
        policy = FailurePolicy(max_tries=2, retry_on_exception=True)
        coord.start_activity(activity(policy), program("h1"))
        coord.handle_outcome(outcome("fake-1", TaskState.EXCEPTION, exception=exc))
        kernel.run()
        assert len(service.submissions) == 2
        # Budget exhausted on a masked exception: reported as EXCEPTION so
        # workflow-level handlers still see the true cause.
        coord.handle_outcome(outcome("fake-2", TaskState.EXCEPTION, exception=exc))
        assert resolutions[0].state is TaskState.EXCEPTION


class TestCheckpointFlags:
    def test_flag_recorded_and_sent_back_on_retry(self, setup, kernel):
        service, _, coord, _ = setup
        coord.start_activity(activity(FailurePolicy.retrying(3)), program("h1"))
        assert service.submissions[0].checkpoint_flag is None
        coord.handle_outcome(outcome("fake-1", TaskState.FAILED, flag="ck-7"))
        kernel.run()
        assert service.submissions[1].checkpoint_flag == "ck-7"

    def test_flag_not_sent_when_restart_disabled(self, setup, kernel):
        service, _, coord, _ = setup
        policy = FailurePolicy(max_tries=3, restart_from_checkpoint=False)
        coord.start_activity(activity(policy), program("h1"))
        coord.handle_outcome(outcome("fake-1", TaskState.FAILED, flag="ck-7"))
        kernel.run()
        assert service.submissions[1].checkpoint_flag is None

    def test_flags_cleared_on_success(self, setup, kernel):
        service, _, coord, _ = setup
        coord.start_activity(activity(FailurePolicy.retrying(None)), program("h1"))
        coord.handle_outcome(outcome("fake-1", TaskState.FAILED, flag="ck-1"))
        kernel.run()
        coord.handle_outcome(outcome("fake-2", TaskState.DONE))
        assert coord.checkpoints.flag_for("act@slot0") is None


class TestReplication:
    def test_all_options_submitted_simultaneously(self, setup):
        service, _, coord, _ = setup
        coord.start_activity(
            activity(FailurePolicy.replica()), program("h1", "h2", "h3")
        )
        assert [r.hostname for r in service.submissions] == ["h1", "h2", "h3"]

    def test_first_success_wins_and_cancels_siblings(self, setup):
        service, _, coord, resolutions = setup
        coord.start_activity(
            activity(FailurePolicy.replica()), program("h1", "h2", "h3")
        )
        coord.handle_outcome(outcome("fake-2", TaskState.DONE, result="r2"))
        assert resolutions[0].state is TaskState.DONE
        assert set(service.cancelled) == {"fake-1", "fake-3"}

    def test_single_replica_failure_not_fatal(self, setup, kernel):
        _, _, coord, resolutions = setup
        coord.start_activity(
            activity(FailurePolicy.replica()), program("h1", "h2")
        )
        coord.handle_outcome(outcome("fake-1", TaskState.FAILED))
        kernel.run()
        assert resolutions == []  # h2 still running

    def test_all_replicas_exhausted_escalates(self, setup, kernel):
        _, _, coord, resolutions = setup
        coord.start_activity(
            activity(FailurePolicy.replica()), program("h1", "h2")
        )
        coord.handle_outcome(outcome("fake-1", TaskState.FAILED))
        coord.handle_outcome(outcome("fake-2", TaskState.FAILED))
        kernel.run()
        assert resolutions and resolutions[0].state is TaskState.FAILED

    def test_replicas_retry_independently(self, setup, kernel):
        service, _, coord, resolutions = setup
        coord.start_activity(
            activity(FailurePolicy.replica(max_tries=2)), program("h1", "h2")
        )
        coord.handle_outcome(outcome("fake-1", TaskState.FAILED))
        kernel.run()
        assert len(service.submissions) == 3  # h1 resubmitted
        assert service.submissions[2].hostname == "h1"
        coord.handle_outcome(outcome("fake-3", TaskState.DONE))
        assert resolutions[0].state is TaskState.DONE
        assert resolutions[0].tries_used == 3

    def test_exception_on_one_replica_cancels_all(self, setup):
        service, _, coord, resolutions = setup
        coord.start_activity(
            activity(FailurePolicy.replica()), program("h1", "h2", "h3")
        )
        exc = UserException("disk_full")
        coord.handle_outcome(outcome("fake-1", TaskState.EXCEPTION, exception=exc))
        assert resolutions[0].state is TaskState.EXCEPTION
        assert set(service.cancelled) == {"fake-2", "fake-3"}


class TestLifecycle:
    def test_double_start_rejected(self, setup):
        _, _, coord, _ = setup
        coord.start_activity(activity(FailurePolicy()), program("h1"))
        with pytest.raises(RecoveryError, match="already running"):
            coord.start_activity(activity(FailurePolicy()), program("h1"))

    def test_cancel_activity_silences_everything(self, setup, kernel):
        service, _, coord, resolutions = setup
        coord.start_activity(activity(FailurePolicy.retrying(5)), program("h1"))
        coord.cancel_activity("act")
        assert service.cancelled == ["fake-1"]
        coord.handle_outcome(outcome("fake-1", TaskState.FAILED))
        kernel.run()
        assert resolutions == [] and len(service.submissions) == 1

    def test_unknown_outcome_ignored(self, setup):
        _, _, coord, resolutions = setup
        coord.handle_outcome(outcome("ghost", TaskState.DONE))
        assert resolutions == []

    def test_active_outcome_is_informational(self, setup):
        _, _, coord, resolutions = setup
        coord.start_activity(activity(FailurePolicy()), program("h1"))
        coord.handle_outcome(outcome("fake-1", TaskState.ACTIVE))
        assert resolutions == []
        assert coord.running_activities() == ["act"]


class TestSnapshotRestore:
    def test_snapshot_reflects_spent_budget(self, setup, kernel):
        _, _, coord, _ = setup
        coord.start_activity(activity(FailurePolicy.retrying(3)), program("h1"))
        coord.handle_outcome(outcome("fake-1", TaskState.FAILED, flag="ck-2"))
        kernel.run()
        snap = coord.snapshot_activity("act")
        assert snap["slots"][0]["tries"] == 2
        assert snap["slots"][0]["flag"] == "ck-2"

    def test_restore_preserves_budget_across_restart(self, reactor, bus, kernel):
        service = FakeService()
        detector = FailureDetector(reactor, bus)
        resolutions = []
        coord = RecoveryCoordinator(
            service, detector, Broker(), reactor, on_resolution=resolutions.append
        )
        # The engine died after 2 of 3 tries; restart with the snapshot.
        coord.start_activity(
            activity(FailurePolicy.retrying(3)),
            program("h1"),
            restored_state={"slots": [{"tries": 2, "option": 0, "flag": "ck-9"}]},
        )
        assert len(service.submissions) == 1
        assert service.submissions[0].checkpoint_flag == "ck-9"
        coord.handle_outcome(outcome("fake-1", TaskState.FAILED))
        kernel.run()
        # 3 tries total consumed (2 before restart + 1 after): escalate.
        assert resolutions and resolutions[0].state is TaskState.FAILED

    def test_restore_with_exhausted_budget_fails_immediately(self, reactor, bus):
        service = FakeService()
        detector = FailureDetector(reactor, bus)
        resolutions = []
        coord = RecoveryCoordinator(
            service, detector, Broker(), reactor, on_resolution=resolutions.append
        )
        coord.start_activity(
            activity(FailurePolicy.retrying(2)),
            program("h1"),
            restored_state={"slots": [{"tries": 2, "option": 0}]},
        )
        assert service.submissions == []
        assert resolutions and resolutions[0].state is TaskState.FAILED


class TestAttemptTimeout:
    def test_timeout_cancels_and_retries(self, setup, kernel):
        service, _, coord, resolutions = setup
        policy = FailurePolicy(max_tries=2, attempt_timeout=20.0)
        coord.start_activity(activity(policy), program("h1"))
        kernel.run_until(25.0)  # no outcome ever arrives: watchdog fires
        assert service.cancelled == ["fake-1"]
        assert len(service.submissions) == 2  # retry submitted
        kernel.run_until(50.0)  # second attempt also times out
        assert resolutions and resolutions[0].state is TaskState.FAILED
        assert resolutions[0].tries_used == 2

    def test_outcome_disarms_watchdog(self, setup, kernel):
        service, _, coord, resolutions = setup
        policy = FailurePolicy(max_tries=2, attempt_timeout=20.0)
        coord.start_activity(activity(policy), program("h1"))
        coord.handle_outcome(outcome("fake-1", TaskState.DONE))
        kernel.run_until(100.0)
        assert service.cancelled == []
        assert len(service.submissions) == 1
        assert resolutions[0].state is TaskState.DONE

    def test_cancel_activity_disarms_watchdog(self, setup, kernel):
        service, _, coord, resolutions = setup
        policy = FailurePolicy(max_tries=None, attempt_timeout=20.0)
        coord.start_activity(activity(policy), program("h1"))
        coord.cancel_activity("act")
        kernel.run_until(100.0)
        assert len(service.submissions) == 1  # watchdog never resubmitted
        assert resolutions == []

    def test_late_timeout_after_resolution_is_harmless(self, setup, kernel):
        service, _, coord, resolutions = setup
        policy = FailurePolicy(max_tries=None, attempt_timeout=20.0)
        coord.start_activity(activity(policy), program("h1"))
        coord.handle_outcome(outcome("fake-1", TaskState.DONE))
        kernel.run_until(21.0)
        assert resolutions == [resolutions[0]]  # exactly one resolution
