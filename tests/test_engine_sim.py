"""End-to-end engine tests on the simulated Grid.

These reproduce the paper's structural scenarios (Figures 2–6) with exact
virtual-time assertions, then exercise the additional WPDL features
(conditional transitions, do-while loops, value dependencies) end to end.
"""

from __future__ import annotations

import pytest

from tests.helpers import (
    fig4_workflow,
    fig5_workflow,
    fig6_workflow,
    run_workflow,
    single_task_workflow,
    two_reliable_hosts,
)
from repro.core import FailurePolicy
from repro.engine import NodeStatus, WorkflowEngine, WorkflowStatus
from repro.errors import EngineError
from repro.grid import (
    RELIABLE,
    CheckpointingTask,
    CrashingTask,
    ExceptionProneTask,
    FixedDurationTask,
    inject_crash,
)
from repro.wpdl import JoinMode, Parameter, WorkflowBuilder


class TestSingleTask:
    def test_plain_success(self, quiet_grid):
        quiet_grid.add_host(RELIABLE("h1"))
        quiet_grid.install("h1", "task", FixedDurationTask(30.0, result=42))
        result = run_workflow(single_task_workflow(), quiet_grid)
        assert result.succeeded
        assert result.completion_time == pytest.approx(30.0)
        assert result.variables["task"] == 42

    def test_figure2_retry_three_times_with_interval(self, quiet_grid):
        quiet_grid.add_host(RELIABLE("h1"))
        quiet_grid.install(
            "h1", "task", CrashingTask(duration=30.0, crash_at=5.0, crashes=2)
        )
        wf = single_task_workflow(
            policy=FailurePolicy.retrying(3, interval=10.0)
        )
        result = run_workflow(wf, quiet_grid)
        assert result.succeeded
        # 2 crashes at t=5 each + 10s interval each + full 30s run.
        assert result.completion_time == pytest.approx(5 + 10 + 5 + 10 + 30)
        assert result.tries["task"] == 3

    def test_retries_exhausted_fails_workflow(self, quiet_grid):
        quiet_grid.add_host(RELIABLE("h1"))
        quiet_grid.install(
            "h1", "task", CrashingTask(duration=30.0, crash_at=5.0, crashes=None)
        )
        wf = single_task_workflow(policy=FailurePolicy.retrying(3))
        result = run_workflow(wf, quiet_grid)
        assert result.status is WorkflowStatus.FAILED
        assert result.failed_tasks == ("task",)
        assert result.tries["task"] == 3

    def test_unknown_executable_fails_cleanly(self, quiet_grid):
        quiet_grid.add_host(RELIABLE("h1"))
        result = run_workflow(single_task_workflow(), quiet_grid)
        assert result.status is WorkflowStatus.FAILED

    def test_host_crash_retry_waits_for_recovery(self, quiet_grid):
        quiet_grid.add_host(RELIABLE("h1"))
        quiet_grid.install("h1", "task", FixedDurationTask(30.0))
        inject_crash(quiet_grid.kernel, quiet_grid.host("h1"), at=10.0, duration=20.0)
        wf = single_task_workflow(policy=FailurePolicy.retrying(None))
        result = run_workflow(wf, quiet_grid)
        assert result.succeeded
        # Crash at 10, queue until host back at 30, then 30s run.
        assert result.completion_time == pytest.approx(60.0)

    def test_timeout_raises_engine_error(self, quiet_grid):
        quiet_grid.add_host(RELIABLE("h1"))
        quiet_grid.install("h1", "task", FixedDurationTask(1000.0))
        engine = WorkflowEngine(
            single_task_workflow(), quiet_grid, reactor=quiet_grid.reactor
        )
        with pytest.raises(EngineError, match="did not terminate"):
            engine.run(timeout=10.0)


class TestFigure3Replication:
    def build(self, policy=None):
        return (
            WorkflowBuilder("fig3")
            .program("sum", hosts=["h1", "h2", "h3"])
            .activity(
                "summation", implement="sum", policy=policy or FailurePolicy.replica()
            )
            .build()
        )

    def test_first_replica_wins(self, quiet_grid):
        for name, speed in [("h1", 1.0), ("h2", 4.0), ("h3", 2.0)]:
            quiet_grid.add_host(RELIABLE(name, speed=speed))
        quiet_grid.install_everywhere("sum", FixedDurationTask(40.0))
        result = run_workflow(self.build(), quiet_grid)
        assert result.succeeded
        assert result.completion_time == pytest.approx(10.0)  # 40/4

    def test_one_crashed_replica_tolerated(self, quiet_grid):
        two_reliable_hosts(quiet_grid)
        quiet_grid.add_host(RELIABLE("h3"))
        quiet_grid.add_host(RELIABLE("h1"))
        quiet_grid.add_host(RELIABLE("h2"))
        quiet_grid.install(
            "h1", "sum", CrashingTask(duration=40.0, crash_at=1.0, crashes=None)
        )
        quiet_grid.install("h2", "sum", FixedDurationTask(40.0))
        quiet_grid.install("h3", "sum", FixedDurationTask(50.0))
        result = run_workflow(self.build(), quiet_grid)
        assert result.succeeded
        assert result.completion_time == pytest.approx(40.0)

    def test_replication_with_retry_combination(self, quiet_grid):
        # Section 6: each replica may itself retry.
        for h in ("h1", "h2", "h3"):
            quiet_grid.add_host(RELIABLE(h))
        # All replicas crash once, then succeed; h2 crashes latest but all
        # retry and the fastest recovery path wins.
        quiet_grid.install_everywhere(
            "sum", CrashingTask(duration=40.0, crash_at=2.0, crashes=1)
        )
        result = run_workflow(
            self.build(policy=FailurePolicy.replica(max_tries=None)), quiet_grid
        )
        assert result.succeeded
        # The attempt counter is per-activity, so only the first submission
        # (replica 1) crashes; replicas 2 and 3 run straight through in 40s.
        # Replica 1's retry would finish at 42s but loses the race.
        assert result.completion_time == pytest.approx(40.0)


class TestFigure4AlternativeTask:
    def test_alternative_task_after_fail_to_mask(self, quiet_grid):
        two_reliable_hosts(quiet_grid)
        quiet_grid.install(
            "u1", "fast", CrashingTask(duration=30.0, crash_at=10.0, crashes=None)
        )
        quiet_grid.install("r1", "slow", FixedDurationTask(150.0, result="slow"))
        result = run_workflow(fig4_workflow(), quiet_grid)
        assert result.succeeded
        assert result.node_statuses["FU"] is NodeStatus.FAILED
        assert result.node_statuses["SR"] is NodeStatus.DONE
        # FU: 2 tries x 10s each, then SR 150s.
        assert result.completion_time == pytest.approx(170.0)

    def test_alternative_skipped_benignly_on_success(self, quiet_grid):
        two_reliable_hosts(quiet_grid)
        quiet_grid.install("u1", "fast", FixedDurationTask(30.0))
        quiet_grid.install("r1", "slow", FixedDurationTask(150.0))
        result = run_workflow(fig4_workflow(), quiet_grid)
        assert result.succeeded
        assert result.node_statuses["SR"] is NodeStatus.SKIPPED_OK
        assert result.completion_time == pytest.approx(30.0)

    def test_both_paths_fail_workflow_fails(self, quiet_grid):
        two_reliable_hosts(quiet_grid)
        quiet_grid.install(
            "u1", "fast", CrashingTask(duration=30.0, crash_at=10.0, crashes=None)
        )
        quiet_grid.install(
            "r1", "slow", CrashingTask(duration=150.0, crash_at=5.0, crashes=None)
        )
        result = run_workflow(fig4_workflow(), quiet_grid)
        assert result.status is WorkflowStatus.FAILED
        assert result.node_statuses["Join"] is NodeStatus.SKIPPED_ERROR


class TestFigure5Redundancy:
    def test_fast_branch_wins_slow_cancelled(self, quiet_grid):
        two_reliable_hosts(quiet_grid)
        quiet_grid.install("u1", "fast", FixedDurationTask(30.0))
        quiet_grid.install("r1", "slow", FixedDurationTask(150.0))
        result = run_workflow(fig5_workflow(), quiet_grid)
        assert result.succeeded
        assert result.completion_time == pytest.approx(30.0)
        assert result.node_statuses["SR"] is NodeStatus.CANCELLED

    def test_unreliable_branch_failure_absorbed(self, quiet_grid):
        two_reliable_hosts(quiet_grid)
        quiet_grid.install(
            "u1", "fast", CrashingTask(duration=30.0, crash_at=5.0, crashes=None)
        )
        quiet_grid.install("r1", "slow", FixedDurationTask(150.0))
        result = run_workflow(fig5_workflow(), quiet_grid)
        assert result.succeeded
        assert result.completion_time == pytest.approx(150.0)
        assert result.node_statuses["FU"] is NodeStatus.FAILED

    def test_both_branches_fail(self, quiet_grid):
        two_reliable_hosts(quiet_grid)
        quiet_grid.install(
            "u1", "fast", CrashingTask(duration=30.0, crash_at=5.0, crashes=None)
        )
        quiet_grid.install(
            "r1", "slow", CrashingTask(duration=150.0, crash_at=5.0, crashes=None)
        )
        result = run_workflow(fig5_workflow(), quiet_grid)
        assert result.status is WorkflowStatus.FAILED


class TestFigure6ExceptionHandling:
    def test_exception_routes_to_alternative(self, quiet_grid):
        two_reliable_hosts(quiet_grid)
        quiet_grid.install(
            "u1", "fast", ExceptionProneTask(duration=30.0, checks=5, probability=1.0)
        )
        quiet_grid.install("r1", "slow", FixedDurationTask(150.0))
        result = run_workflow(fig6_workflow(), quiet_grid)
        assert result.succeeded
        assert result.node_statuses["FU"] is NodeStatus.EXCEPTION
        # Exception at first check (t=6) + SR (150) = 156 (the paper's p=1).
        assert result.completion_time == pytest.approx(156.0)

    def test_no_exception_fast_path(self, quiet_grid):
        two_reliable_hosts(quiet_grid)
        quiet_grid.install(
            "u1", "fast", ExceptionProneTask(duration=30.0, checks=5, probability=0.0)
        )
        quiet_grid.install("r1", "slow", FixedDurationTask(150.0))
        result = run_workflow(fig6_workflow(), quiet_grid)
        assert result.succeeded
        assert result.completion_time == pytest.approx(30.0)
        assert result.node_statuses["SR"] is NodeStatus.SKIPPED_OK

    def test_unmatched_exception_name_fails_workflow(self, quiet_grid):
        two_reliable_hosts(quiet_grid)
        quiet_grid.install(
            "u1",
            "fast",
            ExceptionProneTask(
                duration=30.0, checks=5, probability=1.0, exception_name="oom"
            ),
        )
        quiet_grid.install("r1", "slow", FixedDurationTask(150.0))
        result = run_workflow(fig6_workflow(), quiet_grid)
        # Handler is bound to disk_full only; an oom exception is unhandled.
        assert result.status is WorkflowStatus.FAILED


class TestCheckpointRestart:
    def test_restart_from_checkpoint_after_host_crash(self, quiet_grid):
        quiet_grid.add_host(RELIABLE("h1"))
        quiet_grid.install(
            "h1",
            "task",
            CheckpointingTask(
                duration=30.0, checkpoints=6, overhead=0.5, recovery_time=0.5
            ),
        )
        inject_crash(quiet_grid.kernel, quiet_grid.host("h1"), at=12.0, duration=0.0)
        wf = single_task_workflow(policy=FailurePolicy.retrying(None))
        result = run_workflow(wf, quiet_grid)
        assert result.succeeded
        # Segments are 5.5 (5 work + 0.5 ckpt); 2 done by t=11.  Crash at 12,
        # resume with R=0.5 then 4 segments: 12 + 0.5 + 22 = 34.5.
        assert result.completion_time == pytest.approx(34.5)

    def test_cold_restart_when_checkpoint_restart_disabled(self, quiet_grid):
        quiet_grid.add_host(RELIABLE("h1"))
        quiet_grid.install(
            "h1",
            "task",
            CheckpointingTask(duration=30.0, checkpoints=6, overhead=0.5),
        )
        inject_crash(quiet_grid.kernel, quiet_grid.host("h1"), at=12.0, duration=0.0)
        wf = single_task_workflow(
            policy=FailurePolicy(max_tries=None, restart_from_checkpoint=False)
        )
        result = run_workflow(wf, quiet_grid)
        assert result.succeeded
        # Full re-run from scratch: 12 + 33 = 45.
        assert result.completion_time == pytest.approx(45.0)


class TestControlFlowFeatures:
    def test_conditional_if_then_else(self, quiet_grid):
        quiet_grid.add_host(RELIABLE("h1"))
        quiet_grid.install("h1", "measure", FixedDurationTask(5.0, result=42))
        quiet_grid.install("h1", "big", FixedDurationTask(10.0, result="big"))
        quiet_grid.install("h1", "small", FixedDurationTask(20.0, result="small"))
        wf = (
            WorkflowBuilder("cond")
            .program("measure", hosts=["h1"])
            .program("big", hosts=["h1"])
            .program("small", hosts=["h1"])
            .activity("probe", implement="measure", outputs=["value"])
            .activity("big_path", implement="big")
            .activity("small_path", implement="small")
            .dummy("join", join=JoinMode.OR)
            .when("probe", "value > 10", "big_path")
            .when("probe", "value <= 10", "small_path")
            .transition("big_path", "join")
            .transition("small_path", "join")
            .build()
        )
        result = run_workflow(wf, quiet_grid)
        assert result.succeeded
        assert result.node_statuses["big_path"] is NodeStatus.DONE
        assert result.node_statuses["small_path"] is NodeStatus.SKIPPED_OK
        assert result.completion_time == pytest.approx(15.0)

    def test_do_while_loop_iterates(self, quiet_grid):
        quiet_grid.add_host(RELIABLE("h1"))

        # Each iteration "improves" the residual: attempts are numbered, so
        # use the attempt count embedded by the behaviour result.
        class Residual(FixedDurationTask):
            def plan(self, ctx):
                plan = super().plan(ctx)
                steps = list(plan)
                end = steps[-1]
                end.payload["result"] = {"residual": 1.0 / ctx.attempt}
                return steps

        quiet_grid.install("h1", "solve", Residual(duration=10.0))
        body = (
            WorkflowBuilder("refine_body")
            .program("solve", hosts=["h1"])
            .activity("solve", implement="solve", outputs=["residual"])
            .build()
        )
        wf = (
            WorkflowBuilder("loop")
            .loop("refine", body, "residual > 0.3", max_iterations=10)
            .build()
        )
        result = run_workflow(wf, quiet_grid)
        assert result.succeeded
        # residual: 1, 1/2, 1/3 -> stop after 4th? 1/3 > 0.3 -> once more:
        # 1/4 = 0.25 <= 0.3 -> 4 iterations of 10s.
        assert result.node_statuses["refine"] is NodeStatus.DONE
        assert result.variables["refine"] == 4
        assert result.completion_time == pytest.approx(40.0)

    def test_loop_max_iterations_fails_node(self, quiet_grid):
        quiet_grid.add_host(RELIABLE("h1"))
        quiet_grid.install("h1", "solve", FixedDurationTask(1.0, result=1))
        body = (
            WorkflowBuilder("body")
            .program("solve", hosts=["h1"])
            .activity("solve", implement="solve")
            .build()
        )
        wf = (
            WorkflowBuilder("loop")
            .loop("forever", body, "1 > 0", max_iterations=3)
            .build()
        )
        result = run_workflow(wf, quiet_grid)
        assert result.status is WorkflowStatus.FAILED
        assert result.node_statuses["forever"] is NodeStatus.FAILED

    def test_loop_failure_caught_by_alternative_task(self, quiet_grid):
        quiet_grid.add_host(RELIABLE("h1"))
        quiet_grid.install(
            "h1", "solve", CrashingTask(duration=5.0, crash_at=1.0, crashes=None)
        )
        quiet_grid.install("h1", "fallback", FixedDurationTask(7.0))
        body = (
            WorkflowBuilder("body")
            .program("solve", hosts=["h1"])
            .activity("solve", implement="solve")
            .build()
        )
        wf = (
            WorkflowBuilder("loop")
            .program("fallback", hosts=["h1"])
            .loop("refine", body, "1 > 0", max_iterations=5)
            .activity("alt", implement="fallback")
            .dummy("join", join=JoinMode.OR)
            .transition("refine", "join")
            .on_failure("refine", "alt")
            .transition("alt", "join")
            .build()
        )
        result = run_workflow(wf, quiet_grid)
        assert result.succeeded
        assert result.node_statuses["refine"] is NodeStatus.FAILED
        assert result.node_statuses["alt"] is NodeStatus.DONE

    def test_value_dependency_passes_outputs_as_inputs(self, quiet_grid):
        quiet_grid.add_host(RELIABLE("h1"))
        quiet_grid.install("h1", "produce", FixedDurationTask(1.0, result={"n": 9}))
        received = {}

        class Consume(FixedDurationTask):
            def plan(self, ctx):
                return super().plan(ctx)

        quiet_grid.install("h1", "consume", Consume(duration=1.0))
        wf = (
            WorkflowBuilder("deps")
            .program("produce", hosts=["h1"])
            .program("consume", hosts=["h1"])
            .activity("producer", implement="produce", outputs=["n"])
            .activity(
                "consumer",
                implement="consume",
                inputs=[Parameter(name="count", ref="n")],
            )
            .transition("producer", "consumer")
            .build()
        )
        engine = WorkflowEngine(wf, quiet_grid, reactor=quiet_grid.reactor)
        result = engine.run(timeout=1e6)
        assert result.succeeded
        assert result.variables["n"] == 9
        # The submitted request carried the resolved input value.
        jobs = quiet_grid.gram.jobs_for_activity("consumer")
        assert jobs[0].request.arguments == {"count": 9}

    def test_diamond_and_join_collects_both_branches(self, quiet_grid):
        quiet_grid.add_host(RELIABLE("h1"))
        quiet_grid.install("h1", "w", FixedDurationTask(10.0))
        quiet_grid.install("h1", "v", FixedDurationTask(25.0))
        wf = (
            WorkflowBuilder("diamond")
            .program("w", hosts=["h1"])
            .program("v", hosts=["h1"])
            .dummy("split")
            .activity("left", implement="w")
            .activity("right", implement="v")
            .dummy("join")  # AND join
            .fan_out("split", "left", "right")
            .fan_in("join", "left", "right")
            .build()
        )
        result = run_workflow(wf, quiet_grid)
        assert result.succeeded
        assert result.completion_time == pytest.approx(25.0)


class TestEngineReset:
    """:meth:`WorkflowEngine.reset`: the in-place rewind must replay a run
    bit for bit and match a freshly constructed engine — the contract the
    Monte-Carlo hot path (:class:`repro.sim.engine_mc.EngineSampler`)
    builds on."""

    def _retry_scenario(self, grid):
        grid.add_host(RELIABLE("h1"))
        grid.install(
            "h1", "task", CrashingTask(duration=30.0, crash_at=5.0, crashes=2)
        )
        return single_task_workflow(
            policy=FailurePolicy.retrying(3, interval=10.0)
        )

    def test_reset_replays_a_deterministic_run_exactly(self, quiet_grid):
        wf = self._retry_scenario(quiet_grid)
        engine = WorkflowEngine(wf, quiet_grid, reactor=quiet_grid.reactor)
        first = engine.run(timeout=1e7)
        quiet_grid.reset()
        engine.reset()
        second = engine.run(timeout=1e7)
        assert first.succeeded and second.succeeded
        assert second.completion_time == first.completion_time
        assert second.tries == first.tries
        assert second.node_statuses == first.node_statuses

    def test_reset_matches_a_fresh_engine(self, quiet_grid):
        wf = self._retry_scenario(quiet_grid)
        engine = WorkflowEngine(wf, quiet_grid, reactor=quiet_grid.reactor)
        engine.run(timeout=1e7)
        quiet_grid.reset()
        engine.reset()
        reused = engine.run(timeout=1e7)
        quiet_grid.reset()
        fresh = WorkflowEngine(wf, quiet_grid, reactor=quiet_grid.reactor)
        want = fresh.run(timeout=1e7)
        assert reused.completion_time == want.completion_time
        assert reused.tries == want.tries
        assert reused.node_statuses == want.node_statuses

    def test_reset_after_a_failed_run_replays_identically(self, quiet_grid):
        quiet_grid.add_host(RELIABLE("h1"))
        quiet_grid.install(
            "h1",
            "task",
            CrashingTask(duration=30.0, crash_at=5.0, crashes=None),
        )
        wf = single_task_workflow(policy=FailurePolicy.retrying(3))
        engine = WorkflowEngine(wf, quiet_grid, reactor=quiet_grid.reactor)
        first = engine.run(timeout=1e7)
        assert first.status is WorkflowStatus.FAILED
        quiet_grid.reset()
        engine.reset()
        second = engine.run(timeout=1e7)
        assert second.status is WorkflowStatus.FAILED
        assert second.tries == first.tries
        assert second.failed_tasks == first.failed_tasks

    def test_many_reset_cycles_stay_stable(self, quiet_grid):
        # Repeated reuse must not accumulate state (subscriptions, retry
        # slots, checkpoint records) that shifts later runs.
        wf = self._retry_scenario(quiet_grid)
        engine = WorkflowEngine(wf, quiet_grid, reactor=quiet_grid.reactor)
        times = []
        for _ in range(5):
            times.append(engine.run(timeout=1e7).completion_time)
            quiet_grid.reset()
            engine.reset()
        assert len(set(times)) == 1
