"""Unit tests for the discrete-event kernel and its reactor adapter."""

from __future__ import annotations

import pytest

from repro.grid.simkernel import PeriodicTask


class TestScheduling:
    def test_clock_starts_at_zero(self, kernel):
        assert kernel.now() == 0.0

    def test_event_fires_at_scheduled_time(self, kernel):
        fired = []
        kernel.schedule(5.0, lambda: fired.append(kernel.now()))
        kernel.run()
        assert fired == [5.0]

    def test_events_fire_in_time_order(self, kernel):
        order = []
        kernel.schedule(3.0, lambda: order.append("c"))
        kernel.schedule(1.0, lambda: order.append("a"))
        kernel.schedule(2.0, lambda: order.append("b"))
        kernel.run()
        assert order == ["a", "b", "c"]

    def test_equal_times_fire_fifo(self, kernel):
        order = []
        for tag in "abc":
            kernel.schedule(1.0, lambda t=tag: order.append(t))
        kernel.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self, kernel):
        fired = []
        kernel.schedule(2.0, lambda: kernel.schedule_at(7.0, lambda: fired.append(kernel.now())))
        kernel.run()
        assert fired == [7.0]

    def test_nested_scheduling_during_event(self, kernel):
        fired = []
        kernel.schedule(1.0, lambda: kernel.schedule(1.0, lambda: fired.append(kernel.now())))
        kernel.run()
        assert fired == [2.0]

    def test_zero_delay_runs_at_current_time(self, kernel):
        times = []
        kernel.schedule(4.0, lambda: kernel.schedule(0.0, lambda: times.append(kernel.now())))
        kernel.run()
        assert times == [4.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, kernel):
        fired = []
        handle = kernel.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        kernel.run()
        assert fired == []
        assert handle.cancelled

    def test_pending_excludes_cancelled(self, kernel):
        h = kernel.schedule(1.0, lambda: None)
        kernel.schedule(2.0, lambda: None)
        assert kernel.pending() == 2
        h.cancel()
        assert kernel.pending() == 1

    def test_double_cancel_is_idempotent(self, kernel):
        h = kernel.schedule(1.0, lambda: None)
        kernel.schedule(2.0, lambda: None)
        h.cancel()
        h.cancel()
        assert kernel.pending() == 1
        assert kernel.run() == 1


class TestCompaction:
    # Cancellation is lazy (entries stay queued until popped); once enough
    # pile up the heap is compacted in place.  These tests pin both the
    # trigger and that compaction never changes observable behaviour.

    def test_mass_cancellation_shrinks_the_heap(self, kernel):
        handles = [kernel.schedule(float(i), lambda: None) for i in range(200)]
        for h in handles[50:]:
            h.cancel()
        # Compaction triggers once cancellations clear the 64-entry floor
        # AND outnumber the live entries (here: at the 100th cancel); the
        # 50 stragglers after it stay below the floor and are dropped
        # lazily on pop.
        assert len(kernel._heap) == 100
        assert kernel.pending() == 50
        assert kernel.run() == 50

    def test_firing_order_survives_compaction(self, kernel):
        fired = []
        keep = []
        for i in range(200):
            if i % 4 == 0:
                keep.append(i)
                kernel.schedule(float(i), lambda i=i: fired.append(i))
            else:
                kernel.schedule(float(i), lambda: None).cancel()
        kernel.run()
        assert fired == keep

    def test_below_threshold_cancels_still_never_fire(self, kernel):
        fired = []
        handles = [
            kernel.schedule(float(i), lambda i=i: fired.append(i))
            for i in range(10)
        ]
        handles[3].cancel()
        handles[7].cancel()
        assert len(kernel._heap) == 10  # too few to compact
        kernel.run()
        assert fired == [i for i in range(10) if i not in (3, 7)]

    def test_compaction_during_drain_is_safe(self, kernel):
        # run() holds a local reference to the heap list; a callback that
        # mass-cancels must compact in place without breaking the drain.
        fired = []
        later = []

        def first() -> None:
            fired.append(kernel.now())
            for h in later:
                h.cancel()

        kernel.schedule(1.0, first)
        later.extend(
            kernel.schedule(2.0 + i, lambda: fired.append(-1))
            for i in range(150)
        )
        kernel.schedule(500.0, lambda: fired.append(kernel.now()))
        kernel.run()
        assert fired == [1.0, 500.0]


class TestReset:
    def test_reset_restores_pristine_state(self, kernel):
        kernel.schedule(1.0, lambda: None)
        kernel.schedule(2.0, lambda: None).cancel()
        kernel.run()
        kernel.schedule(9.0, lambda: None)
        kernel.reset()
        assert kernel.now() == 0.0
        assert kernel.pending() == 0
        assert kernel.events_processed == 0

    def test_reset_restarts_fifo_tie_breaking(self, kernel):
        kernel.schedule(1.0, lambda: None)
        kernel.run()
        kernel.reset()
        order = []
        for tag in "abc":
            kernel.schedule(1.0, lambda t=tag: order.append(t))
        kernel.run()
        assert order == ["a", "b", "c"]


class TestRun:
    def test_run_returns_event_count(self, kernel):
        for i in range(3):
            kernel.schedule(float(i), lambda: None)
        assert kernel.run() == 3

    def test_run_until_stops_at_boundary_inclusive(self, kernel):
        fired = []
        kernel.schedule(1.0, lambda: fired.append(1.0))
        kernel.schedule(2.0, lambda: fired.append(2.0))
        kernel.schedule(3.0, lambda: fired.append(3.0))
        kernel.run_until(2.0)
        assert fired == [1.0, 2.0]
        assert kernel.now() == 2.0
        kernel.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_until_advances_clock_without_events(self, kernel):
        kernel.run_until(10.0)
        assert kernel.now() == 10.0

    def test_max_events_guard(self, kernel):
        def reschedule():
            kernel.schedule(1.0, reschedule)

        kernel.schedule(1.0, reschedule)
        with pytest.raises(RuntimeError, match="max_events"):
            kernel.run(max_events=100)

    def test_step_returns_false_when_idle(self, kernel):
        assert kernel.step() is False

    def test_events_processed_counter(self, kernel):
        kernel.schedule(1.0, lambda: None)
        kernel.run()
        assert kernel.events_processed == 1


class TestPeriodicTask:
    def test_fires_every_period(self, kernel):
        times = []
        task = PeriodicTask(kernel, 2.0, lambda: times.append(kernel.now()))
        kernel.run_until(7.0)
        task.stop()
        assert times == [2.0, 4.0, 6.0]

    def test_start_delay_override(self, kernel):
        times = []
        task = PeriodicTask(kernel, 2.0, lambda: times.append(kernel.now()), start_delay=0.5)
        kernel.run_until(5.0)
        task.stop()
        assert times == [0.5, 2.5, 4.5]

    def test_stop_prevents_future_fires(self, kernel):
        times = []
        task = PeriodicTask(kernel, 1.0, lambda: times.append(kernel.now()))
        kernel.run_until(2.0)
        task.stop()
        kernel.run_until(10.0)
        assert times == [1.0, 2.0]
        assert task.stopped

    def test_invalid_period_rejected(self, kernel):
        with pytest.raises(ValueError):
            PeriodicTask(kernel, 0.0, lambda: None)

    def test_callback_may_stop_itself(self, kernel):
        times = []

        def cb():
            times.append(kernel.now())
            if len(times) == 2:
                task.stop()

        task = PeriodicTask(kernel, 1.0, cb)
        kernel.run_until(10.0)
        assert times == [1.0, 2.0]


class TestSimReactor:
    def test_now_tracks_kernel(self, kernel, reactor):
        kernel.schedule(3.0, lambda: None)
        kernel.run()
        assert reactor.now() == 3.0

    def test_call_later_and_cancel(self, kernel, reactor):
        fired = []
        h1 = reactor.call_later(1.0, lambda: fired.append("a"))
        h2 = reactor.call_later(2.0, lambda: fired.append("b"))
        h2.cancel()
        kernel.run()
        assert fired == ["a"]
        assert not h1.cancelled and h2.cancelled

    def test_post_runs_on_next_turn(self, kernel, reactor):
        fired = []
        reactor.post(lambda: fired.append(kernel.now()))
        kernel.run()
        assert fired == [0.0]

    def test_run_until_complete_stops_on_predicate(self, kernel, reactor):
        state = {"done": False}
        reactor.call_later(1.0, lambda: None)
        reactor.call_later(2.0, lambda: state.update(done=True))
        reactor.call_later(3.0, lambda: None)
        assert reactor.run_until_complete(lambda: state["done"]) is True
        assert kernel.now() == 2.0

    def test_run_until_complete_gives_up_when_idle(self, kernel, reactor):
        assert reactor.run_until_complete(lambda: False) is False

    def test_run_until_complete_respects_timeout(self, kernel, reactor):
        def reschedule():
            reactor.call_later(1.0, reschedule)

        reactor.call_later(1.0, reschedule)
        assert reactor.run_until_complete(lambda: False, timeout=5.0) is False
        assert kernel.now() <= 6.0
