"""Multiplexed engine hosting: N concurrent instances, one shared runtime.

Covers :class:`repro.engine.host.EngineHost` and the per-instance event
scoping it relies on: workflow-scoped task topics, ``(workflow_id,
activity)`` attempt counters, scoped checkpoint-flag keys, host-managed
engine-id allocation, batched heartbeat delivery, and the determinism
contract — multiplexed results bit-identical to isolated sequential runs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import (
    fig4_workflow,
    result_identity,
    run_isolated,
    run_multiplexed,
    single_task_workflow,
)
from repro.core import FailurePolicy
from repro.detection.detector import scoped_topic
from repro.engine import EngineHost, WorkflowEngine
from repro.errors import EngineError
from repro.grid import (
    RELIABLE,
    CrashingTask,
    FixedDurationTask,
    GridConfig,
    SimulatedGrid,
    inject_crash,
)
from repro.obs import RunObserver
from repro.wpdl import WorkflowBuilder


def quiet_grid(seed=42):
    return SimulatedGrid(seed=seed, config=GridConfig(heartbeats=False))


def fixed_grid(seed=42, *, duration=5.0):
    """One reliable unlimited-slot host running a fixed-duration task."""
    grid = quiet_grid(seed)
    grid.add_host(RELIABLE("h1", slots=None))
    grid.install("h1", "task", FixedDurationTask(duration, result="ok"))
    return grid


def crashing_grid(seed=42):
    """Task crashes deterministically on its first attempt, then succeeds."""
    grid = quiet_grid(seed)
    grid.add_host(RELIABLE("h1", slots=None))
    grid.install(
        "h1",
        "task",
        CrashingTask(duration=3.0, crash_at=1.0, crashes=1, result="ok"),
    )
    return grid


class TestEngineHostBasics:
    def test_submit_and_wait_all(self):
        grid = fixed_grid()
        host = EngineHost(grid, reactor=grid.reactor)
        ids = [host.submit(single_task_workflow()) for _ in range(3)]
        assert ids == ["wf-1", "wf-2", "wf-3"]
        results = host.wait_all(timeout=1e7)
        assert list(results) == ids
        assert all(r.succeeded for r in results.values())

    def test_results_in_submission_order(self):
        grid = fixed_grid()
        host = EngineHost(grid, reactor=grid.reactor)
        host.submit(single_task_workflow("a"))
        host.submit(single_task_workflow("b"))
        results = host.wait_all(timeout=1e7)
        assert [r.workflow for r in results.values()] == ["a", "b"]

    def test_submit_many_single_spec(self):
        grid = fixed_grid()
        host = EngineHost(grid, reactor=grid.reactor)
        ids = host.submit_many(single_task_workflow(), 5)
        assert len(ids) == 5
        assert len(host.wait_all(timeout=1e7)) == 5

    def test_duplicate_workflow_id_rejected(self):
        grid = fixed_grid()
        host = EngineHost(grid, reactor=grid.reactor)
        host.submit(single_task_workflow(), workflow_id="mine")
        with pytest.raises(EngineError, match="already submitted"):
            host.submit(single_task_workflow(), workflow_id="mine")

    def test_empty_workflow_id_rejected(self):
        grid = fixed_grid()
        host = EngineHost(grid, reactor=grid.reactor)
        with pytest.raises(EngineError, match="non-empty"):
            host.submit(single_task_workflow(), workflow_id="")

    def test_unknown_engine_lookup_raises(self):
        grid = fixed_grid()
        host = EngineHost(grid, reactor=grid.reactor)
        with pytest.raises(EngineError, match="unknown workflow_id"):
            host.engine("wf-99")

    def test_pending_then_drained(self):
        grid = fixed_grid()
        host = EngineHost(grid, reactor=grid.reactor)
        wfid = host.submit(single_task_workflow())
        assert host.pending == [wfid]
        host.wait_all(timeout=1e7)
        assert host.pending == []

    def test_no_cross_instance_serialization(self):
        # Unlimited slots: 50 concurrent instances each finish at exactly
        # the task duration, as if each ran alone.
        grid = fixed_grid(duration=7.0)
        host = EngineHost(grid, reactor=grid.reactor)
        host.submit_many(single_task_workflow(), 50)
        results = host.wait_all(timeout=1e7)
        assert {r.completion_time for r in results.values()} == {7.0}


class TestAttemptScoping:
    def test_each_instance_pays_its_own_crash(self):
        # Broken scoping would let one instance's crash consume the
        # (shared-keyed) attempt counter and the sibling would spuriously
        # succeed first try.
        grid = crashing_grid()
        host = EngineHost(grid, reactor=grid.reactor)
        host.submit_many(
            single_task_workflow(policy=FailurePolicy.retrying(3)), 2
        )
        results = host.wait_all(timeout=1e7)
        assert [r.tries["task"] for r in results.values()] == [2, 2]

    def test_scoped_checkpoint_flags_do_not_collide(self):
        grid = crashing_grid()
        host = EngineHost(grid, reactor=grid.reactor)
        host.submit_many(
            single_task_workflow(policy=FailurePolicy.retrying(3)), 2
        )
        host.wait_all(timeout=1e7)
        # Both coordinators shared one CheckpointManager without clobbering
        # each other; all per-instance scopes drained at completion.
        assert host.runtime.checkpoints.snapshot() == {}


class TestEventScoping:
    def test_no_cross_instance_event_leakage(self):
        """100 concurrent instances: every task event must carry the
        workflow_id of the topic it was published on, and every engine
        event must be labelled with its instance."""
        grid = fixed_grid()
        host = EngineHost(grid, reactor=grid.reactor)
        bus = host.runtime.bus
        bus.enable_history()
        host.submit_many(single_task_workflow(), 100)
        results = host.wait_all(timeout=1e7)
        assert len(results) == 100
        task_records = [
            r for r in bus.history if r.topic.startswith("task.")
        ]
        assert task_records, "expected task traffic on the bus"
        for record in task_records:
            wfid = record.payload.workflow_id
            assert wfid, "multiplexed outcomes must be workflow-scoped"
            assert record.topic.endswith("." + wfid), (
                f"outcome for {wfid} leaked onto topic {record.topic}"
            )
        engine_records = [
            r for r in bus.history if r.topic.startswith("engine.")
        ]
        seen_ids = {r.payload["workflow_id"] for r in engine_records}
        assert seen_ids == set(results)

    def test_engine_subscribes_to_exact_scoped_topics(self):
        # Exact-topic subscriptions are the O(1)-dispatch contract: no
        # multiplexed engine ever pattern-matches sibling traffic.
        grid = fixed_grid()
        host = EngineHost(grid, reactor=grid.reactor)
        engine = host.engine(host.submit(single_task_workflow()))
        wfid = engine.workflow_id
        assert {sub.pattern for sub in engine._subscriptions} == {
            scoped_topic(base, wfid)
            for base in ("task.done", "task.failed", "task.exception")
        }
        assert all("*" not in sub.pattern for sub in engine._subscriptions)
        host.wait_all(timeout=1e7)

    def test_unscoped_single_engine_unchanged(self):
        # The classic path publishes on bare topics with empty workflow_id.
        grid = fixed_grid()
        engine = WorkflowEngine(
            single_task_workflow(), grid, reactor=grid.reactor
        )
        engine.runtime.bus.enable_history()
        result = engine.run(timeout=1e7)
        assert result.succeeded
        done = [
            r
            for r in engine.runtime.bus.history
            if r.topic == "task.done"
        ]
        assert len(done) == 1
        assert done[0].payload.workflow_id == ""


class TestDeterminism:
    def test_multiplexed_equals_isolated_sequential(self):
        specs = [
            single_task_workflow(policy=FailurePolicy.retrying(3))
            for _ in range(10)
        ]
        mux = run_multiplexed(specs, crashing_grid())
        seq = run_isolated(specs, crashing_grid)
        assert [result_identity(m) for m in mux] == [
            result_identity(s) for s in seq
        ]

    def test_mixed_specs_multiplexed_equals_isolated(self):
        def make_grid(seed=42):
            grid = quiet_grid(seed)
            grid.add_host(RELIABLE("u1", slots=None))
            grid.add_host(RELIABLE("r1", slots=None))
            grid.install("u1", "fast", FixedDurationTask(5.0, result="f"))
            grid.install("r1", "slow", FixedDurationTask(50.0, result="s"))
            grid.add_host(RELIABLE("h1", slots=None))
            grid.install("h1", "task", FixedDurationTask(2.0, result="ok"))
            return grid

        specs = [fig4_workflow(), single_task_workflow(), fig4_workflow()]
        mux = run_multiplexed(specs, make_grid())
        seq = run_isolated(specs, make_grid)
        assert [result_identity(m) for m in mux] == [
            result_identity(s) for s in seq
        ]


# Deterministic per-activity durations drawn by hypothesis; the grid
# installs one executable per (spec, activity) so instances of different
# specs never share attempt identities by accident.
@st.composite
def chain_specs(draw):
    n_specs = draw(st.integers(min_value=2, max_value=8))
    specs = []
    for s in range(n_specs):
        n_tasks = draw(st.integers(min_value=1, max_value=3))
        durations = [
            draw(st.integers(min_value=1, max_value=20)) for _ in range(n_tasks)
        ]
        crash_first = draw(st.booleans())
        specs.append((s, durations, crash_first))
    return specs


class TestInterleavingProperty:
    @settings(max_examples=20, deadline=None)
    @given(chain_specs())
    def test_interleaved_equals_isolated(self, specs):
        """2–8 random chain workflows: concurrent interleaved execution is
        indistinguishable (statuses, tries, completion times, variables)
        from each running alone."""

        def build_spec(index, durations, crash_first):
            builder = WorkflowBuilder(f"chain-{index}")
            prev = None
            for i in range(len(durations)):
                exe = f"exe-{index}-{i}"
                builder.program(exe, hosts=["h1"])
                builder.activity(
                    f"t{i}",
                    implement=exe,
                    policy=FailurePolicy.retrying(3),
                )
                if prev is not None:
                    builder.transition(prev, f"t{i}")
                prev = f"t{i}"
            return builder.build()

        def build_grid(seed=42):
            grid = quiet_grid(seed)
            grid.add_host(RELIABLE("h1", slots=None))
            for index, durations, crash_first in specs:
                for i, duration in enumerate(durations):
                    if crash_first and i == 0:
                        behavior = CrashingTask(
                            duration=float(duration),
                            crash_at=float(duration) / 2,
                            crashes=1,
                            result=i,
                        )
                    else:
                        behavior = FixedDurationTask(float(duration), result=i)
                    grid.install("h1", f"exe-{index}-{i}", behavior)
            return grid

        workflows = [build_spec(*spec) for spec in specs]
        mux = run_multiplexed(workflows, build_grid())
        seq = run_isolated(workflows, build_grid)
        assert [result_identity(m) for m in mux] == [
            result_identity(s) for s in seq
        ]


class TestObserverDimension:
    def test_per_instance_spans_and_labels(self):
        grid = fixed_grid()
        host = EngineHost(grid, reactor=grid.reactor)
        observer = RunObserver(host.runtime.bus, clock=grid.reactor.now)
        host.submit_many(single_task_workflow(), 3)
        host.wait_all(timeout=1e7)
        wf_spans = [s for s in observer.spans if s.name == "workflow.run"]
        assert {s.labels["workflow_id"] for s in wf_spans} == {
            "wf-1",
            "wf-2",
            "wf-3",
        }
        node_spans = [s for s in observer.spans if s.name == "node.run"]
        assert len(node_spans) == 3
        parents = {s.parent for s in node_spans}
        assert parents == {s.id for s in wf_spans}

    def test_workflow_id_metric_label(self):
        grid = fixed_grid()
        host = EngineHost(grid, reactor=grid.reactor)
        observer = RunObserver(host.runtime.bus, clock=grid.reactor.now)
        host.submit_many(single_task_workflow(), 2)
        host.wait_all(timeout=1e7)
        for wfid in ("wf-1", "wf-2"):
            counter = observer.metrics.counter(
                "engine_workflow_runs_total",
                status="done",
                workflow_id=wfid,
            )
            assert counter.value == 1

    def test_unscoped_run_has_no_workflow_id_label(self):
        grid = fixed_grid()
        engine = WorkflowEngine(
            single_task_workflow(), grid, reactor=grid.reactor
        )
        observer = RunObserver.attach(engine)
        engine.run(timeout=1e7)
        spans = [s for s in observer.spans if s.name == "workflow.run"]
        assert len(spans) == 1
        assert "workflow_id" not in spans[0].labels


class TestEngineIdAllocation:
    def test_host_managed_reset_preserves_id_space(self):
        grid = fixed_grid()
        host = EngineHost(grid, reactor=grid.reactor)
        first = host.submit(single_task_workflow())
        host.wait_all(timeout=1e7)
        # An engine reset inside a host-managed runtime must not rewind
        # the shared counter — the next instance still gets a fresh id.
        host.engine(first).reset()
        grid.reset(seed=42)
        second = host.submit(single_task_workflow())
        assert second != first
        assert second == "wf-2"

    def test_standalone_reset_rewinds_ids(self):
        grid = fixed_grid()
        engine = WorkflowEngine(
            single_task_workflow(), grid, reactor=grid.reactor
        )
        engine.run(timeout=1e7)
        before = engine.runtime.next_engine_id()
        grid.reset(seed=42)
        engine.reset()
        assert engine.runtime.next_engine_id() == 1
        assert before >= 1


class TestBatchedHeartbeats:
    def _run(self, *, batch: bool):
        grid = SimulatedGrid(
            seed=3,
            config=GridConfig(crash_detection="heartbeat", heartbeats=True),
        )
        grid.add_host(RELIABLE("flaky", heartbeat_period=1.0))
        grid.add_host(RELIABLE("backup", heartbeat_period=1.0))
        grid.install("flaky", "work", FixedDurationTask(50.0))
        grid.install("backup", "work", FixedDurationTask(50.0))
        inject_crash(grid.kernel, grid.host("flaky"), at=10.0, duration=1000.0)
        from repro.core.policy import ResourceSelection

        wf = (
            WorkflowBuilder("hb")
            .program("work", hosts=["flaky", "backup"])
            .activity(
                "work",
                implement="work",
                policy=FailurePolicy.retrying(
                    None, resource_selection=ResourceSelection.ROTATE
                ),
            )
            .build()
        )
        host = EngineHost(
            grid,
            reactor=grid.reactor,
            heartbeat_timeout=5.0,
            batch_heartbeats=batch,
        )
        host.submit(wf)
        results = host.wait_all(timeout=1e6)
        return list(results.values())[0]

    def test_batched_equals_unbatched(self):
        batched = self._run(batch=True)
        unbatched = self._run(batch=False)
        assert result_identity(batched) == result_identity(unbatched)
        assert batched.succeeded
        assert batched.tries["work"] == 2
