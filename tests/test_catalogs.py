"""Unit tests for the workflow runtime directory services."""

from __future__ import annotations

import math

import pytest

from repro.catalogs import (
    DataCatalog,
    DataReplica,
    ResourceCatalog,
    ResourceQuery,
    SoftwareCatalog,
    SoftwareEntry,
)
from repro.errors import CatalogError, NoResourceError
from repro.grid.resource import RELIABLE, UNRELIABLE, ResourceSpec


class TestSoftwareCatalog:
    @pytest.fixture
    def catalog(self):
        cat = SoftwareCatalog()
        cat.register(
            SoftwareEntry(
                name="solver_fast",
                computation="linear_solve",
                hostname="big.example.org",
                requirements={"memory_gb": 64},
                characteristics={"speed": "fast", "reliability": "low"},
            )
        )
        cat.register(
            SoftwareEntry(
                name="solver_disk",
                computation="linear_solve",
                hostname="small.example.org",
                characteristics={"speed": "slow", "reliability": "high"},
            )
        )
        cat.register(
            SoftwareEntry(
                name="solver_fast",
                computation="linear_solve",
                hostname="other.example.org",
            )
        )
        return cat

    def test_implementations_of_computation(self, catalog):
        impls = catalog.implementations_of("linear_solve")
        assert len(impls) == 3
        assert catalog.implementations_of("unknown") == []

    def test_locations_of_executable(self, catalog):
        hosts = {e.hostname for e in catalog.locations_of("solver_fast")}
        assert hosts == {"big.example.org", "other.example.org"}

    def test_lookup_specific(self, catalog):
        entry = catalog.lookup("solver_disk", "small.example.org")
        assert entry.characteristics["reliability"] == "high"

    def test_lookup_missing_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.lookup("solver_disk", "big.example.org")

    def test_computations_listing(self, catalog):
        assert catalog.computations() == ["linear_solve"]

    def test_entry_validation(self):
        with pytest.raises(CatalogError):
            SoftwareEntry(name="", computation="c", hostname="h")


class TestDataCatalog:
    @pytest.fixture
    def catalog(self):
        cat = DataCatalog()
        cat.register(DataReplica("input.dat", "h1", "/data/input.dat", size_gb=2.0))
        cat.register(DataReplica("input.dat", "h2", "/mirror/input.dat", size_gb=2.0))
        cat.register(
            DataReplica("partial.dat", "h1", "/tmp/partial.dat", complete=False)
        )
        return cat

    def test_replicas_of_complete_only_by_default(self, catalog):
        assert len(catalog.replicas_of("input.dat")) == 2
        assert catalog.replicas_of("partial.dat") == []
        assert len(catalog.replicas_of("partial.dat", complete_only=False)) == 1

    def test_locate_prefers_host(self, catalog):
        assert catalog.locate("input.dat", prefer_host="h2").hostname == "h2"
        assert catalog.locate("input.dat").hostname == "h1"

    def test_locate_missing_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.locate("partial.dat")

    def test_partial_replicas_for_cleanup(self, catalog):
        partials = catalog.partial_replicas()
        assert [p.logical_name for p in partials] == ["partial.dat"]

    def test_retract_removes_replica(self, catalog):
        assert catalog.retract("partial.dat", "h1", "/tmp/partial.dat")
        assert catalog.partial_replicas() == []
        assert not catalog.retract("partial.dat", "h1", "/tmp/partial.dat")

    def test_logical_names(self, catalog):
        assert catalog.logical_names() == ["input.dat", "partial.dat"]

    def test_replica_validation(self):
        with pytest.raises(CatalogError):
            DataReplica("", "h", "/p")
        with pytest.raises(CatalogError):
            DataReplica("n", "h", "/p", size_gb=-1)


class TestResourceCatalog:
    @pytest.fixture
    def catalog(self):
        cat = ResourceCatalog()
        cat.register(RELIABLE("condor1", disk_gb=500, memory_gb=64, speed=2.0))
        cat.register(UNRELIABLE("volunteer1", mttf=30.0, disk_gb=40, memory_gb=4))
        cat.register(UNRELIABLE("volunteer2", mttf=300.0, mean_downtime=60.0))
        return cat

    def test_register_duplicate_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.register(RELIABLE("condor1"))

    def test_get_and_contains(self, catalog):
        assert "condor1" in catalog
        assert catalog.get("condor1").reliable
        with pytest.raises(CatalogError):
            catalog.get("nope")

    def test_deregister_retires_resource(self, catalog):
        catalog.deregister("volunteer1")
        assert "volunteer1" not in catalog
        assert len(catalog) == 2

    def test_match_attribute_constraints(self, catalog):
        matches = catalog.match(ResourceQuery(min_disk_gb=200))
        assert [m.hostname for m in matches] == ["condor1"]

    def test_match_reliability_floor(self, catalog):
        matches = catalog.match(ResourceQuery(min_mttf=100.0))
        assert {m.hostname for m in matches} == {"condor1", "volunteer2"}

    def test_match_tags(self, catalog):
        matches = catalog.match(ResourceQuery(require_tags=frozenset({"volunteer"})))
        assert {m.hostname for m in matches} == {"volunteer1", "volunteer2"}

    def test_match_excludes_hosts(self, catalog):
        matches = catalog.match(ResourceQuery(exclude_hosts=frozenset({"condor1"})))
        assert "condor1" not in {m.hostname for m in matches}

    def test_select_best_ranked(self, catalog):
        # Default ranking prefers reliable & fast.
        assert catalog.select().hostname == "condor1"

    def test_select_custom_rank(self, catalog):
        cheapest = catalog.select(rank=lambda s: -s.speed)
        assert cheapest.speed == 1.0

    def test_select_no_match_raises(self, catalog):
        with pytest.raises(NoResourceError):
            catalog.select(ResourceQuery(min_memory_gb=1024))

    def test_max_downtime_constraint(self, catalog):
        matches = catalog.match(ResourceQuery(max_mean_downtime=0.0))
        assert "volunteer2" not in {m.hostname for m in matches}


class TestResourceSpec:
    def test_failure_rate(self):
        assert UNRELIABLE("h", mttf=20.0).failure_rate == pytest.approx(0.05)
        assert RELIABLE("h").failure_rate == 0.0

    def test_with_reliability_copy(self):
        spec = RELIABLE("h", speed=2.0)
        varied = spec.with_reliability(50.0, 10.0)
        assert varied.mttf == 50.0 and varied.mean_downtime == 10.0
        assert varied.speed == 2.0 and varied.hostname == "h"
        assert math.isinf(spec.mttf)  # original untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceSpec(hostname="")
        with pytest.raises(ValueError):
            ResourceSpec(hostname="h", speed=0.0)
        with pytest.raises(ValueError):
            ResourceSpec(hostname="h", mttf=-1.0)
