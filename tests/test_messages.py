"""Unit tests for detection-service message types and wire format."""

from __future__ import annotations

import pytest

from repro.core.exceptions import UserException
from repro.detection.messages import (
    CheckpointNotice,
    Done,
    ExceptionNotice,
    Heartbeat,
    TaskEnd,
    TaskStart,
    decode,
    encode,
)
from repro.errors import DetectionError

ALL_MESSAGES = [
    Heartbeat(sent_at=1.0, hostname="n1", seq=7),
    TaskStart(sent_at=2.0, job_id="j1", hostname="n1"),
    TaskEnd(sent_at=3.0, job_id="j1", hostname="n1", result={"sum": 42}),
    ExceptionNotice(
        sent_at=4.0,
        job_id="j1",
        hostname="n1",
        exception=UserException("disk_full", "no space", data={"free_gb": 0.1}),
    ),
    CheckpointNotice(sent_at=5.0, job_id="j1", hostname="n1", flag="k1", progress=0.5),
    Done(sent_at=6.0, job_id="j1", hostname="n1", exit_code=137, host_crashed=True),
]


class TestWireFormat:
    @pytest.mark.parametrize("msg", ALL_MESSAGES, ids=lambda m: m.kind)
    def test_encode_decode_roundtrip(self, msg):
        assert decode(encode(msg)) == msg

    def test_encode_includes_kind_discriminator(self):
        payload = encode(Done(job_id="j"))
        assert payload["kind"] == "done"

    def test_decode_unknown_kind_rejected(self):
        with pytest.raises(DetectionError, match="unknown message kind"):
            decode({"kind": "bogus"})

    def test_exception_payload_structure(self):
        payload = encode(ALL_MESSAGES[3])
        assert payload["exception"]["name"] == "disk_full"
        assert payload["exception"]["data"] == {"free_gb": 0.1}

    def test_messages_are_frozen(self):
        msg = Done(job_id="j")
        with pytest.raises(Exception):
            msg.exit_code = 1  # type: ignore[misc]


class TestValidation:
    def test_heartbeat_requires_hostname(self):
        with pytest.raises(DetectionError):
            Heartbeat(seq=1)

    def test_done_defaults_clean_exit(self):
        msg = Done(job_id="j")
        assert msg.exit_code == 0 and not msg.host_crashed
