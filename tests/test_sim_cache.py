"""Tests for the content-addressed Monte-Carlo sample cache.

The correctness contract: a hit must be byte-identical to recomputation,
and the key must cover *every* input that shapes the draw sequence — so
two different experiments can never share an entry, and any parameter
change invalidates automatically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.errors import SimulationError
from repro.sim import (
    SampleCache,
    SimulationParams,
    default_cache_dir,
    engine_samples,
    resolve_cache,
    sweep_mttf,
)

FAULTY = SimulationParams(mttf=15.0, downtime=30.0)


@pytest.fixture
def cache(tmp_path):
    return SampleCache(tmp_path / "mc")


def _key(cache, **overrides):
    kwargs = dict(
        kind="sampler",
        technique="retrying",
        params=FAULTY,
        runs=100,
        base_seed=FAULTY.seed,
    )
    kwargs.update(overrides)
    return cache.key(**kwargs)


class TestKeying:
    def test_key_is_deterministic(self, cache):
        assert _key(cache) == _key(cache)

    def test_key_covers_every_input(self, cache):
        base = _key(cache)
        assert _key(cache, technique="checkpointing") != base
        assert _key(cache, runs=101) != base
        assert _key(cache, base_seed=1) != base
        assert _key(cache, kind="engine") != base
        assert _key(cache, params=FAULTY.with_mttf(16.0)) != base
        assert _key(cache, extra={"timeout": 5.0}) != base

    def test_equal_params_objects_share_a_key(self, cache):
        # Canonicalisation: a reconstructed-but-equal params object must
        # hash identically, or regeneration never hits.
        clone = SimulationParams(mttf=15.0, downtime=30.0)
        assert _key(cache) == _key(cache, params=clone)

    def test_infinite_mttf_is_keyable(self, cache):
        k = _key(cache, params=SimulationParams())
        assert len(k) == 64

    def test_rejects_unknown_kind(self, cache):
        with pytest.raises(SimulationError):
            _key(cache, kind="mystery")

    def test_version_tag_participates(self, cache, monkeypatch):
        import repro.sim.cache as cache_mod

        before = _key(cache)
        monkeypatch.setattr(cache_mod, "SAMPLERS_VERSION", 999)
        assert _key(cache) != before


class TestStorage:
    def test_roundtrip_is_bit_identical(self, cache):
        key = _key(cache)
        vector = np.random.default_rng(0).random(1000)
        cache.store(key, vector)
        assert np.array_equal(cache.load(key), vector)

    def test_miss_returns_none(self, cache):
        assert cache.load(_key(cache)) is None

    def test_corrupt_entry_degrades_to_a_miss_and_is_evicted(self, cache):
        key = _key(cache)
        cache.store(key, np.arange(5.0))
        cache.path_for(key).write_bytes(b"not a npy file")
        assert cache.load(key) is None
        assert not cache.path_for(key).exists()

    def test_info_and_clear(self, cache):
        assert cache.info()["entries"] == 0
        cache.store(_key(cache), np.arange(3.0))
        cache.store(_key(cache, runs=7), np.arange(7.0))
        info = cache.info()
        assert info["entries"] == 2 and info["bytes"] > 0
        assert cache.clear() == 2
        assert cache.info()["entries"] == 0

    def test_resolve_cache_forms(self, cache):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        assert resolve_cache(cache) is cache
        assert isinstance(resolve_cache(True), SampleCache)
        with pytest.raises(SimulationError):
            resolve_cache("yes")

    def test_default_cache_dir_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"


class TestEngineSamplesCache:
    def test_hit_is_bit_identical_to_uncached(self, cache):
        uncached = engine_samples("retrying", FAULTY, runs=5)
        cold = engine_samples("retrying", FAULTY, runs=5, cache=cache)
        warm = engine_samples("retrying", FAULTY, runs=5, cache=cache)
        assert np.array_equal(uncached, cold)
        assert np.array_equal(uncached, warm)
        assert cache.info()["entries"] == 1

    def test_warm_call_reads_the_store_not_the_engine(self, cache):
        engine_samples("retrying", FAULTY, runs=4, cache=cache)
        # Overwrite the lone entry: if the second call recomputed instead
        # of loading, the sentinel would not come back.
        [path] = list(cache._entries())
        sentinel = np.full(4, -1.0)
        key = path.stem
        cache.store(key, sentinel)
        assert np.array_equal(
            engine_samples("retrying", FAULTY, runs=4, cache=cache), sentinel
        )

    def test_run_count_keys_separately(self, cache):
        a = engine_samples("retrying", FAULTY, runs=4, cache=cache)
        b = engine_samples("retrying", FAULTY, runs=6, cache=cache)
        assert a.size == 4 and b.size == 6
        assert cache.info()["entries"] == 2


class TestSweepCache:
    TECHNIQUES = ("retrying", "replication")

    def test_cached_sweep_matches_uncached(self, cache):
        params = SimulationParams(runs=400)
        ref = sweep_mttf(params, [10, 50], techniques=self.TECHNIQUES)
        cold = sweep_mttf(
            params, [10, 50], techniques=self.TECHNIQUES, cache=cache
        )
        warm = sweep_mttf(
            params, [10, 50], techniques=self.TECHNIQUES, cache=cache
        )
        for t in self.TECHNIQUES:
            assert ref[t].y == cold[t].y == warm[t].y
        # One entry per (technique, MTTF) point.
        assert cache.info()["entries"] == 4

    def test_partial_invalidation_resamples_only_new_points(self, cache):
        params = SimulationParams(runs=300)
        sweep_mttf(params, [10, 50], techniques=("retrying",), cache=cache)
        assert cache.info()["entries"] == 2
        # A wider sweep reuses the two cached points and adds one.
        sweep_mttf(params, [10, 50, 90], techniques=("retrying",), cache=cache)
        assert cache.info()["entries"] == 3


class TestCacheCli:
    def test_mc_cache_flag_populates_and_reuses(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = ["mc", "--technique", "retry", "--runs", "200", "--cache"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second  # warm run serves identical estimates
        assert len(list(tmp_path.glob("*.npy"))) == 1

    def test_cache_info_and_clear_commands(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert (
            main(["mc", "--technique", "retry", "--runs", "100", "--cache"]) == 0
        )
        capsys.readouterr()
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "entries:          1" in out
        assert str(tmp_path) in out
        assert main(["cache", "clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "info"]) == 0
        assert "entries:          0" in capsys.readouterr().out

    def test_engine_mc_cache_flag(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = [
            "mc",
            "--technique",
            "retry",
            "--engine",
            "--runs",
            "5",
            "--mttf",
            "15",
            "--cache",
            "--json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert len(list(tmp_path.glob("*.npy"))) == 1
