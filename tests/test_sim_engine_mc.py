"""Engine-level cross-validation: the full Grid-WFS stack reproduces the
abstract samplers' expected completion times (the strongest end-to-end
correctness evidence in this reproduction)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine_mc import (
    build_technique_workflow,
    engine_samples,
    run_engine_once,
)
from repro.sim.params import SimulationParams
from repro.sim.samplers import sample_technique
from repro.sim.stats import relative_error, summarize


class TestWorkflowConstruction:
    def test_retrying_workflow_is_single_unlimited_activity(self):
        wf = build_technique_workflow("retrying", SimulationParams())
        act = wf.node("task")
        assert act.policy.max_tries is None
        assert not act.policy.replicated
        assert len(wf.programs["task"].options) == 1

    def test_replication_workflow_spans_n_hosts(self):
        wf = build_technique_workflow(
            "replication", SimulationParams(replicas=3)
        )
        act = wf.node("task")
        assert act.policy.replicated
        assert len(wf.programs["task"].options) == 3

    def test_unknown_technique_rejected(self):
        with pytest.raises(SimulationError):
            build_technique_workflow("hope", SimulationParams())


class TestSingleRuns:
    def test_failure_free_run_times(self):
        params = SimulationParams()  # mttf = inf
        assert run_engine_once("retrying", params, seed=1) == pytest.approx(30.0)
        assert run_engine_once("checkpointing", params, seed=1) == pytest.approx(
            40.0
        )  # F + K*C
        assert run_engine_once("replication", params, seed=1) == pytest.approx(30.0)

    def test_runs_deterministic_per_seed(self):
        params = SimulationParams(mttf=15.0)
        a = run_engine_once("retrying", params, seed=7)
        b = run_engine_once("retrying", params, seed=7)
        assert a == b


class TestCrossValidation:
    """Engine means must agree with the vectorised samplers.

    Tolerances account for ~400-run engine sampling noise plus the
    checkpoint-exposure modelling nuance documented in
    :mod:`repro.sim.engine_mc`.
    """

    @pytest.mark.parametrize(
        "technique,tol",
        [
            ("retrying", 0.15),
            ("checkpointing", 0.05),
            ("replication", 0.08),
            ("replication_checkpointing", 0.05),
        ],
    )
    def test_engine_matches_sampler(self, technique, tol):
        params = SimulationParams(mttf=20.0, runs=60_000)
        engine_mean = summarize(
            engine_samples(technique, params, runs=400)
        ).mean
        sampler_mean = summarize(sample_technique(technique, params)).mean
        assert relative_error(engine_mean, sampler_mean) < tol

    def test_engine_with_downtime(self):
        params = SimulationParams(mttf=20.0, downtime=30.0, runs=60_000)
        engine_mean = summarize(
            engine_samples("checkpointing", params, runs=300)
        ).mean
        sampler_mean = summarize(
            sample_technique("checkpointing", params)
        ).mean
        assert relative_error(engine_mean, sampler_mean) < 0.10
