"""Engine-level cross-validation: the full Grid-WFS stack reproduces the
abstract samplers' expected completion times (the strongest end-to-end
correctness evidence in this reproduction)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine_mc import (
    build_technique_workflow,
    engine_samples,
    run_engine_once,
)
from repro.sim.params import SimulationParams
from repro.sim.samplers import sample_technique
from repro.sim.stats import relative_error, summarize
from repro.wpdl.parser import parse_wpdl
from repro.wpdl.serializer import serialize_wpdl


class TestWorkflowConstruction:
    def test_retrying_workflow_is_single_unlimited_activity(self):
        wf = build_technique_workflow("retrying", SimulationParams())
        act = wf.node("task")
        assert act.policy.max_tries is None
        assert not act.policy.replicated
        assert len(wf.programs["task"].options) == 1

    def test_replication_workflow_spans_n_hosts(self):
        wf = build_technique_workflow(
            "replication", SimulationParams(replicas=3)
        )
        act = wf.node("task")
        assert act.policy.replicated
        assert len(wf.programs["task"].options) == 3

    def test_backoff_workflow_carries_backoff_policy(self):
        params = SimulationParams(
            retry_interval=1.5, backoff_factor=3.0, max_retry_interval=9.0
        )
        wf = build_technique_workflow("backoff_retry", params)
        policy = wf.node("task").policy
        assert policy.uses_backoff
        assert policy.interval == 1.5
        assert policy.backoff_factor == 3.0
        assert policy.max_interval == 9.0

    @pytest.mark.parametrize(
        "technique", ["replication_checkpointing", "backoff_retry"]
    )
    def test_technique_workflow_roundtrips_through_wpdl(self, technique):
        # The acceptance path: the combined-policy spec survives
        # serialize → parse unchanged, so the engine-MC runs below
        # exercise exactly what a WPDL file would declare.
        wf = build_technique_workflow(technique, SimulationParams())
        assert parse_wpdl(serialize_wpdl(wf)) == wf

    def test_unknown_technique_rejected(self):
        with pytest.raises(SimulationError):
            build_technique_workflow("hope", SimulationParams())


class TestSingleRuns:
    def test_failure_free_run_times(self):
        params = SimulationParams()  # mttf = inf
        assert run_engine_once("retrying", params, seed=1) == pytest.approx(30.0)
        assert run_engine_once("checkpointing", params, seed=1) == pytest.approx(
            40.0
        )  # F + K*C
        assert run_engine_once("replication", params, seed=1) == pytest.approx(30.0)
        # Backoff waits only apply after a failure; failure-free runs pay none.
        assert run_engine_once("backoff_retry", params, seed=1) == pytest.approx(30.0)

    def test_runs_deterministic_per_seed(self):
        params = SimulationParams(mttf=15.0)
        a = run_engine_once("retrying", params, seed=7)
        b = run_engine_once("retrying", params, seed=7)
        assert a == b


class TestCrossValidation:
    """Engine means must agree with the vectorised samplers.

    Tolerances account for ~400-run engine sampling noise plus the
    checkpoint-exposure modelling nuance documented in
    :mod:`repro.sim.engine_mc`.
    """

    @pytest.mark.parametrize(
        "technique,tol",
        [
            ("retrying", 0.15),
            ("checkpointing", 0.05),
            ("replication", 0.08),
            ("replication_checkpointing", 0.05),
            ("backoff_retry", 0.20),
        ],
    )
    def test_engine_matches_sampler(self, technique, tol):
        params = SimulationParams(mttf=20.0, runs=60_000)
        engine_mean = summarize(
            engine_samples(technique, params, runs=400)
        ).mean
        sampler_mean = summarize(sample_technique(technique, params)).mean
        assert relative_error(engine_mean, sampler_mean) < tol

    def test_engine_with_downtime(self):
        params = SimulationParams(mttf=20.0, downtime=30.0, runs=60_000)
        engine_mean = summarize(
            engine_samples("checkpointing", params, runs=300)
        ).mean
        sampler_mean = summarize(
            sample_technique("checkpointing", params)
        ).mean
        assert relative_error(engine_mean, sampler_mean) < 0.10
