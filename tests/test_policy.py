"""Unit tests for task-level failure policies."""

from __future__ import annotations

import math

import pytest

from repro.core.policy import (
    DEFAULT_POLICY,
    FailurePolicy,
    ReplicationMode,
    ResourceSelection,
)
from repro.errors import PolicyError


class TestConstruction:
    def test_default_is_single_attempt(self):
        assert DEFAULT_POLICY.max_tries == 1
        assert not DEFAULT_POLICY.retries_enabled
        assert not DEFAULT_POLICY.replicated
        assert DEFAULT_POLICY.restart_from_checkpoint

    def test_retrying_constructor_matches_figure2(self):
        policy = FailurePolicy.retrying(3, interval=10.0)
        assert policy.max_tries == 3
        assert policy.interval == 10.0
        assert policy.retries_enabled
        assert policy.resource_selection is ResourceSelection.SAME

    def test_replica_constructor_matches_figure3(self):
        policy = FailurePolicy.replica()
        assert policy.replicated
        assert policy.replication is ReplicationMode.REPLICA

    def test_replica_with_retries_section6_combination(self):
        policy = FailurePolicy.replica(max_tries=3)
        assert policy.replicated and policy.retries_enabled

    def test_unlimited_retries(self):
        policy = FailurePolicy.retrying(None)
        assert policy.unlimited_retries
        assert policy.retries_enabled
        assert policy.tries_remaining(10**9) == math.inf

    def test_zero_tries_rejected(self):
        with pytest.raises(PolicyError):
            FailurePolicy(max_tries=0)

    def test_negative_interval_rejected(self):
        with pytest.raises(PolicyError):
            FailurePolicy(interval=-1.0)

    def test_invalid_enums_rejected(self):
        with pytest.raises(PolicyError):
            FailurePolicy(replication="replica")  # must be the enum
        with pytest.raises(PolicyError):
            FailurePolicy(resource_selection="same")

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_POLICY.max_tries = 5  # type: ignore[misc]


class TestTriesAccounting:
    def test_tries_remaining_counts_down(self):
        policy = FailurePolicy.retrying(3)
        assert policy.tries_remaining(0) == 3
        assert policy.tries_remaining(1) == 2
        assert policy.tries_remaining(3) == 0

    def test_tries_remaining_never_negative(self):
        assert FailurePolicy.retrying(2).tries_remaining(5) == 0


class TestDescribe:
    def test_default_description(self):
        text = FailurePolicy(restart_from_checkpoint=False).describe()
        assert text == "no task-level recovery"

    def test_retry_description_mentions_limits(self):
        text = FailurePolicy.retrying(3, interval=10).describe()
        assert "3" in text and "10" in text and "same" in text

    def test_unlimited_description(self):
        assert "unlimited" in FailurePolicy.retrying(None).describe()

    def test_replica_description(self):
        assert "replicate" in FailurePolicy.replica().describe()

    def test_mask_exception_description(self):
        assert "exception" in FailurePolicy(retry_on_exception=True).describe()
