"""Time-series store tests: fixed-step downsampling, ring retention,
per-kind rate queries, windowed histogram quantiles, registry sampling,
snapshot/merge folding, the JSONL/CSV dumps, the disabled no-op path,
and the PeriodicCollector cadence + tick ordering."""

from __future__ import annotations

import json
import math

import pytest

from repro.grid import SimReactor
from repro.obs import (
    HistogramSeries,
    MetricsRegistry,
    PeriodicCollector,
    Series,
    TimeSeriesStore,
)


class TestSeries:
    def test_downsamples_into_fixed_step_buckets(self):
        series = Series("s", step=10.0)
        series.observe(1.0, 4.0)
        series.observe(4.0, 8.0)
        series.observe(12.0, 2.0)
        points = series.points()
        assert [p["t"] for p in points] == [0.0, 10.0]
        first, second = points
        assert first["count"] == 2 and first["sum"] == 12.0
        assert first["min"] == 4.0 and first["max"] == 8.0
        assert first["last"] == 8.0
        assert second["count"] == 1 and second["last"] == 2.0
        assert series.latest() == 2.0

    def test_out_of_order_sample_folds_into_newest_bucket(self):
        series = Series("s", step=10.0)
        series.observe(25.0, 1.0)
        series.observe(3.0, 9.0)  # late arrival, not dropped
        (point,) = series.points()
        assert point["t"] == 20.0
        assert point["count"] == 2 and point["max"] == 9.0

    def test_ring_evicts_oldest_bucket(self):
        series = Series("s", step=1.0, capacity=4)
        for t in range(10):
            series.observe(float(t), float(t))
        assert len(series) == 4
        assert [p["t"] for p in series.points()] == [6.0, 7.0, 8.0, 9.0]

    def test_window_queries(self):
        series = Series("s", step=1.0)
        for t in range(6):
            series.observe(float(t), float(t))
        assert [p["t"] for p in series.points(since=2.0, until=4.0)] == [
            2.0,
            3.0,
            4.0,
        ]
        assert series.mean(since=4.0) == pytest.approx(4.5)
        assert series.mean() == pytest.approx(2.5)

    def test_gauge_rate_is_the_slope(self):
        series = Series("s", kind="gauge", step=1.0)
        series.observe(0.0, 10.0)
        series.observe(4.0, 30.0)
        assert series.rate() == pytest.approx(5.0)

    def test_counter_rate_is_delta_of_totals(self):
        series = Series("s", kind="counter", step=1.0)
        series.observe(0.0, 100.0)
        series.observe(10.0, 160.0)
        assert series.rate() == pytest.approx(6.0)
        assert series.rate(since=10.0) is None  # one-point window

    def test_event_rate_is_occurrences_per_second(self):
        series = Series("s", kind="event", step=2.0)
        for t in (0.0, 1.0, 2.0, 3.0):
            series.observe(t)
        # Two buckets (0, 2) spanning 4 seconds including the open step.
        assert series.rate() == pytest.approx(4 / 4.0)

    def test_empty_series_answers_none(self):
        series = Series("s")
        assert series.latest() is None
        assert series.mean() is None
        assert series.rate() is None

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Series("s", step=0.0)
        with pytest.raises(ValueError):
            Series("s", capacity=1)
        with pytest.raises(ValueError):
            Series("s", kind="mystery")


class TestHistogramSeries:
    def make(self):
        track = HistogramSeries("h", bounds=(1.0, 10.0), step=5.0)
        # Cumulative snapshots: 3 obs below 1.0 by t=0, then 4 more
        # landing in the (1, 10] bucket by t=10.
        track.sample(0.0, (3, 0, 0), 3, 1.5)
        track.sample(10.0, (3, 4, 0), 7, 21.5)
        return track

    def test_whole_run_quantile(self):
        track = self.make()
        # 7 observations: 3 under 1.0, 4 in (1, 10] — the 25th percentile
        # sits in the first bucket, the median in the second.
        assert track.quantile(0.25) == 1.0
        assert track.quantile(0.5) == 10.0
        assert track.quantile(0.95) == 10.0
        assert track.observations() == 7

    def test_windowed_quantile_uses_count_deltas(self):
        track = self.make()
        # Window past the first snapshot: only the 4 later observations,
        # all in the (1, 10] bucket.
        assert track.quantile(0.5, since=5.0) == 10.0
        assert track.observations(since=5.0) == 4

    def test_empty_window_is_nan(self):
        track = HistogramSeries("h", bounds=(1.0,))
        assert math.isnan(track.quantile(0.5))
        assert track.observations() == 0

    def test_same_bucket_sample_overwrites(self):
        track = HistogramSeries("h", bounds=(1.0,), step=5.0)
        track.sample(0.0, (1, 0), 1, 0.5)
        track.sample(2.0, (2, 0), 2, 1.0)  # same 5s bucket
        assert len(track) == 1
        assert track.observations() == 2


class TestTimeSeriesStore:
    def test_series_is_memoised_per_label_set(self):
        store = TimeSeriesStore()
        a = store.series("s", host="h1")
        b = store.series("s", host="h1")
        c = store.series("s", host="h2")
        assert a is b and a is not c
        assert store.names() == ["s"]
        assert len(store.matching("s")) == 2
        assert store.get("s", host="h1") is a

    def test_collect_samples_registry_families(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", technique="retrying").inc(3)
        registry.gauge("pool_workers").set(4.0)
        hist = registry.histogram("attempt_seconds", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)

        store = TimeSeriesStore(step=5.0)
        store.collect(registry, now=0.0)
        registry.counter("jobs_total", technique="retrying").inc(2)
        store.collect(registry, now=10.0)

        counter = store.get("jobs_total", technique="retrying")
        assert counter.kind == "counter"
        assert [p["last"] for p in counter.points()] == [3.0, 5.0]
        assert counter.rate() == pytest.approx(0.2)
        assert store.get("pool_workers").latest() == 4.0
        (track,) = store.matching_histograms("attempt_seconds")
        assert track.quantile(0.5) == 1.0
        assert "attempt_seconds" in store.names()

    def test_snapshot_merge_folds_bucket_aligned_points(self):
        a = TimeSeriesStore(step=1.0)
        b = TimeSeriesStore(step=1.0)
        a.observe("s", 0.0, 2.0, host="h1")
        b.observe("s", 0.0, 6.0, host="h1")
        b.observe("s", 1.0, 1.0, host="h1")
        a.merge(b.snapshot())
        points = a.get("s", host="h1").points()
        assert [p["t"] for p in points] == [0.0, 1.0]
        merged = points[0]
        assert merged["count"] == 2 and merged["sum"] == 8.0
        assert merged["min"] == 2.0 and merged["max"] == 6.0
        assert merged["last"] == 6.0  # the merged snapshot's last wins

    def test_dump_jsonl_and_csv(self, tmp_path):
        store = TimeSeriesStore(step=1.0)
        store.observe("s", 0.0, 2.0, host="h1")
        store.observe("s", 1.0, 3.0, host="h1")
        path = tmp_path / "series.jsonl"
        assert store.dump_jsonl(path) == 1
        (line,) = path.read_text().splitlines()
        record = json.loads(line)
        assert record["series"] == "s"
        assert record["labels"] == {"host": "h1"}
        assert len(record["points"]) == 2

        csv = store.to_csv()
        header, *rows = csv.strip().splitlines()
        assert header.startswith("series,labels,t,")
        assert rows[0].startswith("s,host=h1,0,")
        assert store.to_csv(name="absent").strip() == header

    def test_disabled_store_is_inert(self):
        store = TimeSeriesStore(enabled=False)
        series = store.series("s", host="h1")
        series.observe(0.0, 1.0)
        assert len(series) == 0 and series.points() == []
        assert store.histogram_series("h", (1.0,)) is None
        registry = MetricsRegistry()
        registry.counter("c").inc()
        store.collect(registry, now=0.0)
        store.merge({"s": [{"labels": {}, "points": []}]})
        assert store.names() == []


class _Recorder:
    """Stub estimators/health recording the collector's call order."""

    def __init__(self, log, tag):
        self.log = log
        self.tag = tag

    def export(self, registry):
        self.log.append(self.tag)

    def evaluate(self, at):
        self.log.append((self.tag, at))


class TestPeriodicCollector:
    def test_tick_runs_the_plane_in_dependency_order(self):
        log: list = []
        registry = MetricsRegistry()
        store = TimeSeriesStore(step=1.0)
        reactor = SimReactor()
        collector = PeriodicCollector(
            store=store,
            registry=registry,
            reactor=reactor,
            interval=5.0,
            scrapers=(lambda reg: log.append("scrape"),),
            estimators=_Recorder(log, "export"),
            health=_Recorder(log, "health"),
        )
        registry.gauge("g").set(1.0)
        collector.tick(now=7.0)
        assert log == ["scrape", "export", ("health", 7.0)]
        assert collector.ticks == 1
        # The registry sample landed in the store at the tick time.
        (point,) = store.get("g").points()
        assert point["t"] == 7.0

    def test_recurring_timer_fires_on_the_reactor_cadence(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(2.0)
        reactor = SimReactor()
        store = TimeSeriesStore(step=5.0)
        collector = PeriodicCollector(
            store=store, registry=registry, reactor=reactor, interval=5.0
        )
        collector.start()
        reactor.run_until_idle(timeout=16.0)
        collector.stop()
        assert collector.ticks == 3  # t=5, 10, 15
        assert [p["t"] for p in store.get("g").points()] == [5.0, 10.0, 15.0]
        # Stopped: driving the reactor further adds nothing.
        reactor.run_until_idle(timeout=50.0)
        assert collector.ticks == 3

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            PeriodicCollector(
                store=TimeSeriesStore(),
                registry=MetricsRegistry(),
                reactor=SimReactor(),
                interval=0.0,
            )
