"""Unit tests for the runtime workflow instance (parse tree with status)."""

from __future__ import annotations

import pytest

from repro.core.exceptions import UserException
from repro.engine.instance import (
    EdgeState,
    NodeInstance,
    NodeStatus,
    WorkflowInstance,
    WorkflowStatus,
)
from repro.errors import NavigationError
from repro.wpdl import WorkflowBuilder


@pytest.fixture
def instance():
    wf = (
        WorkflowBuilder("w")
        .dummy("a")
        .dummy("b")
        .dummy("c")
        .transition("a", "b")
        .transition("a", "c")
        .build()
    )
    return WorkflowInstance(wf)


class TestBasics:
    def test_nodes_start_pending(self, instance):
        assert all(
            inst.status is NodeStatus.PENDING for inst in instance.nodes.values()
        )
        assert instance.status is WorkflowStatus.RUNNING

    def test_edges_start_pending(self, instance):
        assert instance.edges == [EdgeState.PENDING, EdgeState.PENDING]

    def test_unknown_node_raises(self, instance):
        with pytest.raises(NavigationError):
            instance.node("ghost")

    def test_edge_queries(self, instance):
        assert instance.outgoing_indices("a") == [0, 1]
        assert instance.incoming_indices("b") == [0]
        assert instance.incoming_states("c") == [EdgeState.PENDING]

    def test_set_edge_once(self, instance):
        instance.set_edge(0, EdgeState.FIRED)
        assert instance.edges[0] is EdgeState.FIRED
        with pytest.raises(NavigationError, match="already resolved"):
            instance.set_edge(0, EdgeState.DEAD_OK)

    def test_set_edge_same_value_idempotent(self, instance):
        instance.set_edge(0, EdgeState.FIRED)
        instance.set_edge(0, EdgeState.FIRED)  # no error

    def test_terminal_and_failed_tasks(self, instance):
        assert not instance.terminal()
        instance.node("a").status = NodeStatus.DONE
        instance.node("b").status = NodeStatus.FAILED
        instance.node("c").status = NodeStatus.EXCEPTION
        assert instance.terminal()
        assert instance.failed_tasks() == ("b", "c")

    def test_status_counts(self, instance):
        instance.node("a").status = NodeStatus.DONE
        counts = instance.status_counts()
        assert counts == {"done": 1, "pending": 2}

    def test_running_nodes(self, instance):
        instance.node("b").status = NodeStatus.RUNNING
        assert instance.running_nodes() == ["b"]


class TestSnapshotRestore:
    def test_roundtrip_preserves_everything(self, instance):
        instance.node("a").status = NodeStatus.DONE
        instance.node("a").result = {"total": 10}
        instance.node("a").tries_used = 2
        instance.node("b").status = NodeStatus.EXCEPTION
        instance.node("b").exception = UserException("oom", "boom", data={"gb": 3})
        instance.node("c").recovery_state = {"slots": [{"tries": 1}]}
        instance.edges[0] = EdgeState.FIRED
        instance.edges[1] = EdgeState.DEAD_ERROR
        instance.variables["a"] = {"total": 10}
        instance.started_at = 1.0

        restored = WorkflowInstance.restore(instance.spec, instance.snapshot())
        assert restored.node("a").status is NodeStatus.DONE
        assert restored.node("a").result == {"total": 10}
        assert restored.node("a").tries_used == 2
        assert restored.node("b").exception == UserException(
            "oom", "boom", data={"gb": 3}
        )
        assert restored.node("c").recovery_state == {"slots": [{"tries": 1}]}
        assert restored.edges == [EdgeState.FIRED, EdgeState.DEAD_ERROR]
        assert restored.variables == {"a": {"total": 10}}
        assert restored.started_at == 1.0

    def test_restore_rejects_wrong_workflow(self, instance):
        other = WorkflowBuilder("other").dummy("x").build()
        with pytest.raises(NavigationError, match="snapshot is for workflow"):
            WorkflowInstance.restore(other, instance.snapshot())

    def test_restore_rejects_unknown_node(self, instance):
        snap = instance.snapshot()
        snap["nodes"]["ghost"] = NodeInstance(name="ghost").snapshot()
        with pytest.raises(NavigationError, match="unknown node"):
            WorkflowInstance.restore(instance.spec, snap)

    def test_restore_rejects_edge_count_mismatch(self, instance):
        snap = instance.snapshot()
        snap["edges"].append("pending")
        with pytest.raises(NavigationError, match="edges"):
            WorkflowInstance.restore(instance.spec, snap)

    def test_snapshot_is_json_serialisable(self, instance):
        import json

        json.dumps(instance.snapshot())
