"""Tests for the parallel Monte-Carlo execution layer.

The load-bearing property is *bit-identity*: seed-sharded fan-out must
produce exactly the sample vector of the sequential loop, for every
technique and any worker count — otherwise "parallel" silently changes
the science.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import TECHNIQUES
from repro.sim.engine_mc import EngineSampler, engine_samples, run_engine_once
from repro.sim.params import SimulationParams
from repro.sim.parallel import (
    SEED_STRIDE,
    engine_samples_parallel,
    resolve_jobs,
    seed_for,
    shard_bounds,
    sweep_samples_parallel,
)
from repro.sim.runner import sweep_mttf

FAULTY = SimulationParams(mttf=15.0, downtime=30.0)


class TestSeedSharding:
    def test_seed_for_is_strided(self):
        assert seed_for(100, 0) == 100
        assert seed_for(100, 3) == 100 + 3 * SEED_STRIDE

    def test_shard_bounds_cover_range_contiguously(self):
        bounds = shard_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]
        sizes = [stop - start for start, stop in bounds]
        assert max(sizes) - min(sizes) <= 1

    def test_shard_bounds_more_shards_than_runs(self):
        assert shard_bounds(2, 5) == [(0, 1), (1, 2)]

    def test_shard_bounds_zero_runs(self):
        assert shard_bounds(0, 4) == []

    def test_shard_bounds_rejects_bad_inputs(self):
        with pytest.raises(SimulationError):
            shard_bounds(-1, 2)
        with pytest.raises(SimulationError):
            shard_bounds(5, 0)

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1  # "all cores"
        assert resolve_jobs(-2) == resolve_jobs(0)


class TestResolveJobsEnv:
    def test_env_default_applies_when_jobs_is_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(2) == 2
        assert resolve_jobs(1) == 1

    def test_env_zero_means_all_cores(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert resolve_jobs(None) == resolve_jobs(0) >= 1

    def test_invalid_env_value_is_an_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(SimulationError):
            resolve_jobs(None)

    def test_affinity_mask_bounds_all_cores(self):
        import os

        want = len(os.sched_getaffinity(0))
        assert resolve_jobs(0) == want


class TestShardingProperties:
    """Hypothesis sweeps over the sharding algebra.

    ``shard_bounds`` must partition ``[0, runs)`` exactly — no gap, no
    overlap, no empty shard, balanced to within one run — and ``seed_for``
    streams must never collide across run indices, or two "independent"
    runs would replay the same randomness.
    """

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        runs=st.integers(min_value=0, max_value=5000),
        shards=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200)
    def test_shard_bounds_partition_exactly(self, runs, shards):
        bounds = shard_bounds(runs, shards)
        covered = [i for start, stop in bounds for i in range(start, stop)]
        assert covered == list(range(runs))  # coverage, order, no overlap
        assert all(stop > start for start, stop in bounds)  # no empty shard
        if bounds:
            sizes = [stop - start for start, stop in bounds]
            assert max(sizes) - min(sizes) <= 1  # balanced
            assert len(bounds) == min(shards, runs)

    @given(
        base=st.integers(min_value=0, max_value=2**31),
        indices=st.lists(
            st.integers(min_value=0, max_value=100_000),
            min_size=2,
            max_size=50,
            unique=True,
        ),
    )
    @settings(max_examples=200)
    def test_seed_for_never_collides_across_indices(self, base, indices):
        seeds = [seed_for(base, i) for i in indices]
        assert len(set(seeds)) == len(seeds)

    @given(
        base_a=st.integers(min_value=0, max_value=10_000),
        base_b=st.integers(min_value=0, max_value=10_000),
        i=st.integers(min_value=0, max_value=1000),
        j=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=200)
    def test_seed_for_is_injective_in_the_index(self, base_a, base_b, i, j):
        # Collisions across *different* bases are possible (the stride is
        # finite) — but for one base, distinct indices are distinct seeds,
        # and equal seeds from one base imply equal indices.
        if base_a == base_b and i != j:
            assert seed_for(base_a, i) != seed_for(base_b, j)


class TestEngineSampler:
    def test_reused_sampler_matches_fresh_grid_per_run(self):
        # The in-place grid reset must reproduce a freshly constructed
        # grid bit for bit, or object reuse changes results.
        sampler = EngineSampler("checkpointing", FAULTY)
        for seed in (1, 77, 20030623):
            assert sampler.run(seed) == run_engine_once(
                "checkpointing", FAULTY, seed=seed
            )

    def test_reused_sampler_matches_across_techniques(self):
        for technique in TECHNIQUES:
            sampler = EngineSampler(technique, FAULTY)
            got = [sampler.run(seed) for seed in (5, 6)]
            want = [
                run_engine_once(technique, FAULTY, seed=seed) for seed in (5, 6)
            ]
            assert got == want, technique

    def test_counts_kernel_events(self):
        sampler = EngineSampler("retrying", FAULTY)
        sampler.run(1)
        after_one = sampler.events_processed
        assert after_one > 0
        sampler.run(2)
        assert sampler.events_processed > after_one  # cumulative


class TestParallelBitIdentity:
    def test_jobs4_matches_jobs1_for_every_technique(self):
        for technique in TECHNIQUES:
            seq = engine_samples(technique, FAULTY, runs=8, jobs=1)
            par = engine_samples(technique, FAULTY, runs=8, jobs=4)
            assert np.array_equal(seq, par), technique

    def test_matches_naive_per_run_loop(self):
        seq = engine_samples("replication", FAULTY, runs=6, jobs=1)
        naive = [
            run_engine_once(
                "replication", FAULTY, seed=seed_for(FAULTY.seed, i)
            )
            for i in range(6)
        ]
        assert seq.tolist() == naive

    def test_base_seed_override(self):
        a = engine_samples("retrying", FAULTY, runs=3, base_seed=42)
        b = engine_samples_parallel(
            "retrying", FAULTY, runs=3, base_seed=42, jobs=2
        )
        assert np.array_equal(a, b)

    def test_rejects_zero_runs(self):
        with pytest.raises(SimulationError):
            engine_samples("retrying", FAULTY, runs=0)


class TestWorkerFailureContext:
    # A 1-virtual-second budget is unsatisfiable (the task alone takes 30),
    # so every run fails; the error must carry replay context.
    def test_sequential_error_carries_replay_context(self):
        with pytest.raises(SimulationError) as info:
            engine_samples("checkpointing", FAULTY, runs=2, jobs=1, timeout=1.0)
        msg = str(info.value)
        assert "technique='checkpointing'" in msg
        assert "run_index=0" in msg
        assert f"seed={FAULTY.seed}" in msg

    def test_parallel_error_survives_process_boundary(self):
        with pytest.raises(SimulationError) as info:
            engine_samples("checkpointing", FAULTY, runs=4, jobs=2, timeout=1.0)
        msg = str(info.value)
        assert "technique='checkpointing'" in msg
        assert "run_index=" in msg and "seed=" in msg


class TestProfileHelper:
    def test_profiles_the_sampler_loop(self):
        import io

        from repro.sim.profile import profile_engine_mc

        out = io.StringIO()
        stats = profile_engine_mc(
            "retrying", FAULTY, runs=5, sort="tottime", limit=5, stream=out
        )
        assert stats is not None
        assert "simkernel" in out.getvalue()


class TestSweepParallel:
    def test_points_match_sequential_evaluation(self):
        params = SimulationParams(runs=500)
        points = [("retrying", 10.0), ("retrying", 50.0), ("replication", 10.0)]
        seq = sweep_samples_parallel(points, params, runs=500, jobs=1)
        par = sweep_samples_parallel(points, params, runs=500, jobs=2)
        assert len(seq) == len(par) == 3
        for a, b in zip(seq, par):
            assert np.array_equal(a, b)

    def test_sweep_mttf_jobs_is_invisible_in_results(self):
        params = SimulationParams(runs=400)
        seq = sweep_mttf(params, [10, 50], techniques=("retrying", "replication"))
        par = sweep_mttf(
            params, [10, 50], techniques=("retrying", "replication"), jobs=2
        )
        for technique in ("retrying", "replication"):
            assert seq[technique].x == par[technique].x
            assert seq[technique].y == par[technique].y
            assert seq[technique].label == par[technique].label
