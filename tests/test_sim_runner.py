"""Tests for sweep/series utilities, table formatting and ASCII charts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.params import SimulationParams
from repro.sim.runner import (
    Series,
    ascii_chart,
    crossover,
    format_table,
    sweep,
    sweep_mttf,
)
from repro.sim.stats import Summary, relative_error, summarize


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            Series(label="x", x=(1.0, 2.0), y=(1.0,))

    def test_value_at(self):
        s = Series(label="x", x=(1.0, 2.0), y=(10.0, 20.0))
        assert s.value_at(2.0) == 20.0
        with pytest.raises(SimulationError):
            s.value_at(3.0)

    def test_value_at_tolerates_float_representation(self):
        # Grids built arithmetically (np.linspace, accumulation) don't
        # always hit the literal the caller writes: 0.1 + 0.2 != 0.3.
        s = Series(label="x", x=(0.1 + 0.2, 1.0), y=(3.0, 10.0))
        assert s.value_at(0.3) == 3.0

    def test_value_at_accumulated_grid(self):
        xs = []
        v = 0.0
        for _ in range(5):
            v += 0.1
            xs.append(v)  # 0.30000000000000004 lands in the grid
        s = Series(label="x", x=tuple(xs), y=tuple(range(5)))
        assert s.value_at(0.3) == 2
        assert s.value_at(0.5) == 4

    def test_value_at_isclose_is_not_a_net(self):
        s = Series(label="x", x=(1.0, 2.0), y=(10.0, 20.0))
        with pytest.raises(SimulationError):
            s.value_at(1.001)  # near miss is still a miss


class TestSweep:
    def test_sweep_collects_means_and_summaries(self):
        series = sweep(
            [1.0, 2.0, 3.0],
            lambda x: np.full(100, x * 10.0),
            label="tens",
        )
        assert series.y == (10.0, 20.0, 30.0)
        assert all(isinstance(s, Summary) for s in series.summaries)

    def test_sweep_mttf_produces_labelled_series(self):
        params = SimulationParams(runs=2000)
        out = sweep_mttf(params, [10, 50], techniques=("retrying", "replication"))
        assert set(out) == {"retrying", "replication"}
        assert out["retrying"].label == "Retrying"
        assert out["retrying"].x == (10.0, 50.0)
        # Sanity: retrying at MTTF=10 is much slower than at MTTF=50.
        assert out["retrying"].y[0] > out["retrying"].y[1]


class TestCrossover:
    def test_detects_interpolated_crossing(self):
        a = Series(label="a", x=(0.0, 10.0, 20.0), y=(10.0, 5.0, 0.0))
        b = Series(label="b", x=(0.0, 10.0, 20.0), y=(4.0, 4.0, 4.0))
        x = crossover(a, b)
        assert x == pytest.approx(12.0)  # linear between (10,5) and (20,0)

    def test_none_when_a_always_above(self):
        a = Series(label="a", x=(0.0, 1.0), y=(10.0, 9.0))
        b = Series(label="b", x=(0.0, 1.0), y=(1.0, 1.0))
        assert crossover(a, b) is None

    def test_none_when_a_starts_below(self):
        a = Series(label="a", x=(0.0, 1.0), y=(0.0, 0.0))
        b = Series(label="b", x=(0.0, 1.0), y=(1.0, 1.0))
        assert crossover(a, b) is None

    def test_requires_same_grid(self):
        a = Series(label="a", x=(0.0,), y=(1.0,))
        b = Series(label="b", x=(1.0,), y=(1.0,))
        with pytest.raises(SimulationError):
            crossover(a, b)

    def test_exact_grid_point_crossing(self):
        a = Series(label="a", x=(0.0, 1.0), y=(2.0, 1.0))
        b = Series(label="b", x=(0.0, 1.0), y=(1.0, 1.0))
        assert crossover(a, b) == pytest.approx(1.0)


class TestFormatting:
    def series(self):
        return [
            Series(label="Retrying", x=(10.0, 20.0), y=(190.5, 77.3)),
            Series(label="Checkpointing", x=(10.0, 20.0), y=(45.6, 43.0)),
        ]

    def test_table_contains_headers_and_rows(self):
        table = format_table("MTTF", self.series())
        assert "MTTF" in table and "Retrying" in table
        assert "190.50" in table and "43.00" in table

    def test_table_inf_rendering(self):
        s = [Series(label="x", x=(1.0,), y=(float("inf"),))]
        assert "inf" in format_table("p", s)

    def test_table_requires_shared_grid(self):
        bad = [
            Series(label="a", x=(1.0,), y=(1.0,)),
            Series(label="b", x=(2.0,), y=(1.0,)),
        ]
        with pytest.raises(SimulationError):
            format_table("x", bad)

    def test_chart_renders_axes_and_legend(self):
        chart = ascii_chart(self.series(), width=40, height=10, title="Fig")
        assert "Fig" in chart
        assert "* Retrying" in chart
        assert "o Checkpointing" in chart
        assert "x: [10, 20]" in chart

    def test_chart_caps_infinite_values(self):
        s = [Series(label="x", x=(1.0, 2.0), y=(10.0, float("inf")))]
        chart = ascii_chart(s, y_cap=100.0)
        assert "capped" in chart

    def test_chart_requires_series(self):
        with pytest.raises(SimulationError):
            ascii_chart([])


class TestStats:
    def test_summary_fields(self):
        samples = np.array([1.0, 2.0, 3.0, 4.0, 5.0] * 100)
        s = summarize(samples)
        assert s.mean == pytest.approx(3.0)
        assert s.p50 == pytest.approx(3.0)
        assert s.n == 500
        assert s.ci_low < 3.0 < s.ci_high

    def test_confidence_levels(self):
        samples = np.random.default_rng(1).normal(10, 1, size=1000)
        narrow = summarize(samples, confidence=0.90)
        wide = summarize(samples, confidence=0.99)
        assert wide.ci_halfwidth > narrow.ci_halfwidth

    def test_invalid_inputs(self):
        with pytest.raises(SimulationError):
            summarize(np.array([]))
        with pytest.raises(SimulationError):
            summarize(np.ones(10), confidence=0.5)

    def test_contains_with_slack(self):
        s = summarize(np.random.default_rng(2).normal(5, 1, 10_000))
        assert s.contains(s.mean)
        assert s.contains(s.mean + 1.5 * s.ci_halfwidth, slack=2.0)

    def test_relative_error_edge_cases(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert relative_error(float("inf"), float("inf")) == 0.0
        assert relative_error(1.0, float("inf")) == float("inf")
        assert relative_error(0.5, 0.0) == 0.5


class TestCsvExport:
    def test_csv_header_and_rows(self):
        from repro.sim import to_csv

        s = [
            Series(label="Retrying", x=(10.0, 20.0), y=(190.5, 77.3)),
            Series(label="Checkpointing", x=(10.0, 20.0), y=(45.6, 43.0)),
        ]
        csv = to_csv("mttf", s)
        lines = csv.splitlines()
        assert lines[0] == "mttf,Retrying,Checkpointing"
        assert lines[1].startswith("10,190.5,45.6")

    def test_csv_ci_columns_for_summarised_series(self):
        from repro.sim import to_csv

        samples = np.random.default_rng(0).normal(10, 1, 1000)
        summary = summarize(samples)
        s = Series(
            label="sim", x=(1.0,), y=(summary.mean,), summaries=(summary,)
        )
        csv = to_csv("x", [s])
        assert "sim_ci" in csv.splitlines()[0]
        assert repr(summary.ci_halfwidth) in csv

    def test_csv_infinities_and_commas(self):
        from repro.sim import to_csv

        s = Series(label="a,b", x=(1.0,), y=(float("inf"),))
        csv = to_csv("p", [s])
        assert "a;b" in csv and "inf" in csv

    def test_csv_requires_shared_grid(self):
        from repro.sim import to_csv

        with pytest.raises(SimulationError):
            to_csv(
                "x",
                [
                    Series(label="a", x=(1.0,), y=(1.0,)),
                    Series(label="b", x=(2.0,), y=(1.0,)),
                ],
            )

    def test_csv_roundtrips_through_float(self):
        from repro.sim import to_csv

        value = 190.456789123
        s = Series(label="v", x=(1.0,), y=(value,))
        csv = to_csv("x", [s])
        parsed = float(csv.splitlines()[1].split(",")[1])
        assert parsed == value  # repr() preserves the exact float
