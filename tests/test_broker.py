"""Unit tests for resource brokering."""

from __future__ import annotations

import pytest

from repro.catalogs import ResourceCatalog, ResourceQuery
from repro.core.policy import FailurePolicy, ResourceSelection
from repro.engine.broker import Broker
from repro.errors import BrokerError, NoResourceError
from repro.grid.resource import RELIABLE, UNRELIABLE
from repro.wpdl.model import Activity, Option, Program


def make_program(*hostnames, executable_overrides=None):
    overrides = executable_overrides or {}
    return Program(
        name="prog",
        options=tuple(
            Option(hostname=h, executable=overrides.get(h, "")) for h in hostnames
        ),
    )


def make_activity(policy=None):
    return Activity(name="act", implement="prog", policy=policy or FailurePolicy())


class TestExplicitResolution:
    def test_resolve_index_builds_target(self):
        broker = Broker()
        program = Program(
            name="prog",
            options=(
                Option(hostname="h1", service="batch", executable_dir="/opt"),
            ),
        )
        target = broker.resolve_index(make_activity(), program, 0)
        assert target.hostname == "h1"
        assert target.service == "batch"
        assert target.directory == "/opt"
        assert target.executable == "prog"
        assert target.option_index == 0

    def test_per_option_executable_override(self):
        broker = Broker()
        program = make_program("h1", executable_overrides={"h1": "prog_v2"})
        target = broker.resolve_index(make_activity(), program, 0)
        assert target.executable == "prog_v2"

    def test_out_of_range_index(self):
        broker = Broker()
        with pytest.raises(BrokerError):
            broker.resolve_index(make_activity(), make_program("h1"), 5)

    def test_resolve_all_covers_every_option(self):
        broker = Broker()
        targets = broker.resolve_all(make_activity(), make_program("a", "b", "c"))
        assert [t.hostname for t in targets] == ["a", "b", "c"]
        assert [t.option_index for t in targets] == [0, 1, 2]


class TestRetrySelection:
    def test_same_resource_policy(self):
        broker = Broker()
        activity = make_activity(FailurePolicy.retrying(5))
        program = make_program("a", "b", "c")
        idx = broker.retry_index(activity, program, failed_index=1, tries_used=1)
        assert idx == 1

    def test_rotate_moves_off_failed_option(self):
        broker = Broker()
        activity = make_activity(
            FailurePolicy.retrying(5, resource_selection=ResourceSelection.ROTATE)
        )
        program = make_program("a", "b", "c")
        seen = set()
        for tries in range(1, 7):
            idx = broker.retry_index(
                activity, program, failed_index=0, tries_used=tries
            )
            assert idx != 0
            seen.add(idx)
        assert seen == {1, 2}

    def test_rotate_with_single_option_stays(self):
        broker = Broker()
        activity = make_activity(
            FailurePolicy.retrying(5, resource_selection=ResourceSelection.ROTATE)
        )
        idx = broker.retry_index(
            activity, make_program("only"), failed_index=0, tries_used=3
        )
        assert idx == 0


class TestCatalogBrokering:
    @pytest.fixture
    def catalog(self):
        cat = ResourceCatalog()
        cat.register(RELIABLE("good", speed=2.0))
        cat.register(UNRELIABLE("meh", mttf=50.0))
        cat.register(UNRELIABLE("bad", mttf=5.0))
        return cat

    def test_wildcard_resolves_via_catalog(self, catalog):
        broker = Broker(catalog)
        program = make_program("*")
        target = broker.resolve_index(make_activity(), program, 0)
        assert target.hostname == "good"

    def test_wildcard_without_catalog_raises(self):
        broker = Broker()
        with pytest.raises(BrokerError, match="no resource catalog"):
            broker.resolve_index(make_activity(), make_program("*"), 0)

    def test_activity_query_constrains_choice(self, catalog):
        broker = Broker(catalog)
        broker.set_query("act", ResourceQuery(require_tags=frozenset({"volunteer"})))
        target = broker.resolve_index(make_activity(), make_program("*"), 0)
        assert target.hostname == "meh"  # best volunteer

    def test_replica_wildcards_prefer_distinct_hosts(self, catalog):
        broker = Broker(catalog)
        program = make_program("*", "*", "*")
        targets = broker.resolve_all(make_activity(), program)
        assert len({t.hostname for t in targets}) == 3

    def test_replica_wildcards_reuse_when_exhausted(self, catalog):
        broker = Broker(catalog)
        program = make_program("*", "*", "*", "*", "*")
        targets = broker.resolve_all(make_activity(), program)
        assert len(targets) == 5  # reuse allowed once distinct hosts run out

    def test_unsatisfiable_query_raises(self, catalog):
        broker = Broker(catalog)
        broker.set_query("act", ResourceQuery(min_memory_gb=10_000))
        with pytest.raises(NoResourceError):
            broker.resolve_index(make_activity(), make_program("*"), 0)
