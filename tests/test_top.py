"""``repro top`` tests: frame rendering from a synthetic frame dict, the
TopClient polling a live TelemetryServer (including wall-clock rate
derivation), and the CLI entry point in ``--once --json`` mode."""

from __future__ import annotations

import io
import json

from repro.cli import main
from repro.events import EventBus
from repro.obs import (
    EstimatorSuite,
    HealthEngine,
    HealthRule,
    MetricsRegistry,
    TelemetryServer,
    TimeSeriesStore,
    TopClient,
    WorkflowStatusTracker,
    default_rules,
    render_frame,
    run_top,
)

SAMPLE_FRAME = {
    "url": "http://127.0.0.1:9",
    "healthz": {"status": "ok", "sim_now": 120.0, "bus_publishes": 640},
    "health": {
        "rules": {
            "status": "degraded",
            "rules": [
                {
                    "name": "catalog-drift",
                    "kind": "drift",
                    "state": "firing",
                    "value": None,
                    "op": ">",
                    "threshold": 0.0,
                },
                {
                    "name": "heartbeat-loss",
                    "kind": "threshold",
                    "state": "ok",
                    "value": 0.01,
                    "op": ">",
                    "threshold": 0.2,
                },
            ],
        },
        "estimators": {
            "hosts": [
                {
                    "host": "h1",
                    "failures": 7,
                    "mttf_observed": 33.0,
                    "mttf_prior": 100.0,
                    "downtime_observed": 4.0,
                    "heartbeat_loss_rate": 0.05,
                    "drifted": True,
                }
            ],
            "activities": [
                {
                    "workflow_id": "wf-1",
                    "activity": "transfer",
                    "attempts": 10,
                    "failures": 6,
                    "failure_probability": 0.6,
                    "wilson_low": 0.31,
                    "wilson_high": 0.83,
                }
            ],
        },
    },
    "alerts": {
        "firing": [
            {
                "rule": "catalog-drift",
                "severity": "critical",
                "value": None,
                "threshold": 0.0,
            }
        ],
        "history": [],
    },
    "workflows": [
        {
            "workflow_id": "wf-1",
            "workflow": "mosaic",
            "phase": "running",
            "nodes_launched": 4,
            "nodes_completed": 2,
            "attempts": {"total": 9, "in_flight": 2},
            "last_recovery": {"action": "recovery.retry", "activity": "transfer"},
        },
        {
            "workflow_id": "wf-2",
            "workflow": "mosaic",
            "phase": "done",
            "nodes_launched": 4,
            "nodes_completed": 4,
            "attempts": {"total": 4, "in_flight": 0},
            "last_recovery": None,
        },
    ],
    "rates": {"events_per_sec": 12.5, "sim_seconds_per_sec": 40.0},
}


class TestRenderFrame:
    def test_plain_rendering_carries_every_table(self):
        text = render_frame(SAMPLE_FRAME, color=False)
        assert "\x1b[" not in text  # color off means no ANSI at all
        assert "status=degraded" in text
        assert "events/s=12.5" in text
        assert "alerts firing (1):" in text
        assert "[critical] catalog-drift" in text
        assert "done=1  running=1" in text
        assert "recovery.retry transfer" in text
        # Estimator tables: observed vs prior, and the Wilson CI.
        assert "DRIFT" in text and "100" in text
        assert "p(fail)=0.60 [0.31, 0.83] (6/10)" in text
        # Rule states render with their values.
        assert "firing" in text and "catalog-drift" in text

    def test_quiet_frame_renders_without_alerts_or_estimators(self):
        frame = {
            "url": "u",
            "healthz": {"sim_now": 1.0, "bus_publishes": 2},
            "health": {"rules": {"status": "ok", "rules": []}},
            "alerts": {"firing": [], "history": []},
            "workflows": [],
            "rates": {},
        }
        text = render_frame(frame, color=False)
        assert "status=ok" in text
        assert "alerts: none firing" in text
        assert "workflows (0)" in text

    def test_workflow_table_truncates_at_max(self):
        frame = dict(SAMPLE_FRAME)
        frame["workflows"] = [
            dict(SAMPLE_FRAME["workflows"][0], workflow_id=f"wf-{i}")
            for i in range(25)
        ]
        text = render_frame(frame, color=False, max_workflows=20)
        assert "… 5 more" in text


def _plane(bus: EventBus):
    """A small but fully-wired statistical plane for server tests."""
    registry = MetricsRegistry()
    store = TimeSeriesStore(step=1.0)
    health = HealthEngine(bus=bus)
    suite = EstimatorSuite(
        bus, priors={"h1": (100.0, 0.0)}, store=store, health=health
    )
    default_rules(health, store=store, estimators=suite)
    tracker = WorkflowStatusTracker(bus)
    return registry, store, health, suite, tracker


class TestTopClientLive:
    def test_frame_against_a_live_server_with_rates(self):
        bus = EventBus()
        registry, store, health, suite, tracker = _plane(bus)
        publishes = [0.0]
        server = TelemetryServer(
            registry=registry,
            tracker=tracker,
            store=store,
            health=health,
            estimators=suite,
            extra_health=lambda: {
                "sim_now": 10.0,
                "bus_publishes": publishes[0],
            },
        )
        port = server.start()
        try:
            bus.publish(
                "engine.node_launched",
                {"workflow": "w", "workflow_id": "wf-1", "node": "task"},
            )
            client = TopClient(f"http://127.0.0.1:{port}")
            frame = client.frame()
            assert frame["rates"] == {}  # first poll has no baseline
            (status,) = frame["workflows"]
            assert status["workflow_id"] == "wf-1"
            assert frame["health"]["rules"]["status"] == "ok"
            assert frame["health"]["estimators"]["drift_events"] == 0
            rule_names = {
                r["name"] for r in frame["health"]["rules"]["rules"]
            }
            assert "catalog-drift" in rule_names

            publishes[0] = 500.0
            frame = client.frame()
            assert frame["rates"]["events_per_sec"] > 0.0
        finally:
            server.stop()

    def test_run_top_frames_bound_and_json_mode(self):
        bus = EventBus()
        registry, store, health, suite, tracker = _plane(bus)
        server = TelemetryServer(
            registry=registry,
            tracker=tracker,
            store=store,
            health=health,
            estimators=suite,
        )
        port = server.start()
        try:
            out = io.StringIO()
            status = run_top(
                f"http://127.0.0.1:{port}",
                once=True,
                as_json=True,
                out=out,
            )
            assert status == 0
            frame = json.loads(out.getvalue())
            assert frame["health"]["rules"]["status"] == "ok"

            out = io.StringIO()
            status = run_top(
                f"http://127.0.0.1:{port}",
                interval=0.01,
                frames=2,
                color=False,
                out=out,
            )
            assert status == 0
            assert out.getvalue().count("repro top —") == 2
        finally:
            server.stop()

    def test_unreachable_server_exits_2(self):
        out = io.StringIO()
        assert (
            run_top(
                "http://127.0.0.1:9",  # reserved port: nothing listens
                once=True,
                retry_for=0.0,
                out=out,
            )
            == 2
        )


class TestTopCli:
    def test_once_json_via_main(self, capsys):
        bus = EventBus()
        registry, store, health, suite, tracker = _plane(bus)
        server = TelemetryServer(
            registry=registry,
            tracker=tracker,
            store=store,
            health=health,
            estimators=suite,
        )
        port = server.start()
        try:
            # Bare host:port — the CLI prepends the scheme.
            status = main(["top", f"127.0.0.1:{port}", "--once", "--json"])
            assert status == 0
            frame = json.loads(capsys.readouterr().out)
            assert frame["url"] == f"http://127.0.0.1:{port}"
            assert "healthz" in frame and "alerts" in frame
        finally:
            server.stop()
