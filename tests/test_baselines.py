"""Tests for the Table-1 registry and single-strategy presets."""

from __future__ import annotations

import pytest

from repro.baselines import (
    PRESETS,
    TABLE1,
    adaptive_best,
    adaptive_choice,
    preset_for,
    table1_rows,
)
from repro.errors import SimulationError
from repro.sim.params import SimulationParams


class TestTable1:
    def test_all_eight_systems_present(self):
        names = {s.name for s in TABLE1}
        assert names == {
            "OLTP",
            "Ficus",
            "PVM",
            "DOME",
            "Netsolve",
            "Mentat",
            "Condor-G",
            "CoG Kits",
        }

    def test_no_prior_system_supports_user_exceptions(self):
        assert all(not s.supports_user_exceptions for s in TABLE1)

    def test_no_prior_system_supports_multiple_techniques(self):
        assert all(not s.supports_multiple_techniques for s in TABLE1)

    def test_emulation_techniques_match_paper(self):
        techniques = {s.name: s.emulation_technique for s in TABLE1}
        assert techniques["OLTP"] == "retrying"  # abort and retry
        assert techniques["DOME"] == "checkpointing"
        assert techniques["Netsolve"] == "retrying"
        assert techniques["Mentat"] == "replication"
        assert techniques["Condor-G"] == "retrying"
        assert techniques["Ficus"] == "replication"
        assert techniques["PVM"] is None  # hardcoded in application
        assert techniques["CoG Kits"] is None

    def test_rows_include_gridwfs_summary_row(self):
        rows = table1_rows()
        assert len(rows) == 9
        last = rows[-1]
        assert "Grid-WFS" in last["system"]
        assert last["user exceptions"] == "yes"
        assert last["multiple techniques"] == "yes"
        assert all(row["user exceptions"] == "no" for row in rows[:-1])


class TestPresets:
    def test_presets_exist_for_systems_with_builtin_recovery(self):
        assert set(PRESETS) == {
            "OLTP",
            "Ficus",
            "DOME",
            "Netsolve",
            "Mentat",
            "Condor-G",
        }

    def test_preset_for_unknown_raises(self):
        with pytest.raises(SimulationError):
            preset_for("PVM")

    def test_preset_sampling_works(self):
        params = SimulationParams(mttf=20.0, runs=2000)
        samples = preset_for("Condor-G").sample(params)
        assert samples.shape == (2000,)
        assert samples.min() >= 30.0


class TestAdaptivePolicy:
    def test_adaptive_never_worse_than_any_preset(self):
        params = SimulationParams(mttf=15.0, runs=20_000)
        best = adaptive_best(params)
        for preset in PRESETS.values():
            assert best <= preset.sample(params).mean() * 1.03  # MC slack

    def test_choice_shifts_with_environment(self):
        # The paper's conclusion: the best technique depends on MTTF.
        low_mttf_choice, _ = adaptive_choice(
            SimulationParams(mttf=5.0, runs=20_000)
        )
        high_mttf_choice, _ = adaptive_choice(
            SimulationParams(mttf=100.0, runs=20_000)
        )
        assert low_mttf_choice != high_mttf_choice
        assert low_mttf_choice in (
            "checkpointing",
            "replication_checkpointing",
        )
        assert high_mttf_choice == "replication"
