"""Unit tests for the task state machine."""

from __future__ import annotations

import pytest

from repro.core.states import (
    LEGAL_TRANSITIONS,
    TERMINAL_STATES,
    TaskState,
    TaskStateMachine,
)
from repro.errors import DetectionError

ALL_STATES = list(TaskState)


class TestTransitionRelation:
    def test_terminal_states_have_no_outgoing_transitions(self):
        for src, _dst in LEGAL_TRANSITIONS:
            assert src not in TERMINAL_STATES

    def test_done_failed_exception_are_terminal(self):
        assert TERMINAL_STATES == {
            TaskState.DONE,
            TaskState.FAILED,
            TaskState.EXCEPTION,
        }

    def test_inactive_can_fail_directly(self):
        # A rejected submission fails before ever running.
        assert (TaskState.INACTIVE, TaskState.FAILED) in LEGAL_TRANSITIONS

    def test_inactive_cannot_complete_directly(self):
        assert (TaskState.INACTIVE, TaskState.DONE) not in LEGAL_TRANSITIONS
        assert (TaskState.INACTIVE, TaskState.EXCEPTION) not in LEGAL_TRANSITIONS


class TestMachine:
    def test_initial_state_inactive(self):
        m = TaskStateMachine("t")
        assert m.state is TaskState.INACTIVE
        assert not m.terminal

    def test_happy_path(self):
        m = TaskStateMachine("t")
        m.transition(TaskState.ACTIVE)
        m.transition(TaskState.DONE)
        assert m.terminal

    def test_crash_path(self):
        m = TaskStateMachine("t")
        m.transition(TaskState.ACTIVE)
        m.transition(TaskState.FAILED)
        assert m.state is TaskState.FAILED

    def test_exception_path(self):
        m = TaskStateMachine("t")
        m.transition(TaskState.ACTIVE)
        m.transition(TaskState.EXCEPTION)
        assert m.state is TaskState.EXCEPTION

    def test_illegal_transition_raises(self):
        m = TaskStateMachine("t")
        with pytest.raises(DetectionError, match="illegal transition"):
            m.transition(TaskState.DONE)

    def test_no_transition_out_of_terminal(self):
        m = TaskStateMachine("t")
        m.transition(TaskState.ACTIVE)
        m.transition(TaskState.DONE)
        for target in ALL_STATES:
            assert not m.can_transition(target)

    def test_trail_records_history_with_timestamps(self):
        m = TaskStateMachine("t")
        m.transition(TaskState.ACTIVE, at=1.0)
        m.transition(TaskState.FAILED, at=2.5)
        assert m.trail == [
            (TaskState.INACTIVE, TaskState.ACTIVE, 1.0),
            (TaskState.ACTIVE, TaskState.FAILED, 2.5),
        ]

    def test_force_bypasses_legality(self):
        m = TaskStateMachine("t")
        m.force(TaskState.DONE)
        assert m.state is TaskState.DONE

    def test_state_enum_string_form(self):
        assert str(TaskState.ACTIVE) == "active"
        assert TaskState("failed") is TaskState.FAILED
