"""Unit tests for the fluent workflow builder."""

from __future__ import annotations

import pytest

from repro.errors import SpecificationError, ValidationError
from repro.wpdl import JoinMode, WorkflowBuilder
from repro.wpdl.model import ConditionKind


class TestNodes:
    def test_duplicate_node_rejected(self):
        builder = WorkflowBuilder("w").dummy("t")
        with pytest.raises(SpecificationError, match="duplicate node"):
            builder.dummy("t")

    def test_duplicate_program_rejected(self):
        builder = WorkflowBuilder("w").program("p", hosts=["h"])
        with pytest.raises(SpecificationError, match="duplicate program"):
            builder.program("p", hosts=["h"])

    def test_program_accepts_hosts_shorthand(self):
        wf = (
            WorkflowBuilder("w")
            .program("p", hosts=["a", "b"])
            .activity("t", implement="p")
            .build()
        )
        assert [o.hostname for o in wf.programs["p"].options] == ["a", "b"]

    def test_variables(self):
        wf = WorkflowBuilder("w").dummy("t").variable("x", 3).build()
        assert wf.variables == {"x": 3}


class TestEdgesSugar:
    def test_sequence_chains_done_edges(self):
        wf = (
            WorkflowBuilder("w")
            .dummy("a").dummy("b").dummy("c")
            .sequence("a", "b", "c")
            .build()
        )
        assert [(t.source, t.target) for t in wf.transitions] == [
            ("a", "b"),
            ("b", "c"),
        ]

    def test_fan_out_fan_in(self):
        wf = (
            WorkflowBuilder("w")
            .dummy("s").dummy("x").dummy("y").dummy("j")
            .fan_out("s", "x", "y")
            .fan_in("j", "x", "y")
            .build()
        )
        assert len(wf.transitions) == 4

    def test_on_failure_creates_failed_edge(self):
        wf = (
            WorkflowBuilder("w")
            .dummy("a").dummy("h")
            .on_failure("a", "h")
            .build()
        )
        assert wf.transitions[0].condition.kind is ConditionKind.FAILED

    def test_on_exception_edge(self):
        wf = (
            WorkflowBuilder("w")
            .dummy("a").dummy("h")
            .on_exception("a", "oom", "h")
            .build()
        )
        cond = wf.transitions[0].condition
        assert cond.kind is ConditionKind.EXCEPTION and cond.exception == "oom"

    def test_when_edge(self):
        wf = (
            WorkflowBuilder("w")
            .dummy("a").dummy("b")
            .when("a", "x > 1", "b")
            .build()
        )
        assert wf.transitions[0].condition.expr == "x > 1"

    def test_always_edge(self):
        wf = (
            WorkflowBuilder("w").dummy("a").dummy("b").always("a", "b").build()
        )
        assert wf.transitions[0].condition.kind is ConditionKind.ALWAYS

    def test_redundant_requires_or_join(self):
        builder = (
            WorkflowBuilder("w")
            .dummy("split").dummy("x").dummy("y").dummy("join")  # AND join
        )
        with pytest.raises(SpecificationError, match="JoinMode.OR|join"):
            builder.redundant("split", "join", "x", "y")

    def test_redundant_wires_figure5_shape(self):
        wf = (
            WorkflowBuilder("w")
            .dummy("split")
            .dummy("x")
            .dummy("y")
            .dummy("join", join=JoinMode.OR)
            .redundant("split", "join", "x", "y")
            .build()
        )
        assert len(wf.incoming("join")) == 2
        assert len(wf.outgoing("split")) == 2


class TestBuild:
    def test_build_validates_by_default(self):
        builder = WorkflowBuilder("w").dummy("a").transition("a", "ghost")
        with pytest.raises(ValidationError):
            builder.build()

    def test_build_can_skip_validation(self):
        wf = (
            WorkflowBuilder("w")
            .dummy("a")
            .transition("a", "ghost")
            .build(validate_graph=False)
        )
        assert wf.name == "w"

    def test_built_workflow_is_independent_of_builder(self):
        builder = WorkflowBuilder("w").dummy("a")
        wf1 = builder.build()
        builder.dummy("b")
        wf2 = builder.build()
        assert "b" not in wf1.nodes and "b" in wf2.nodes
