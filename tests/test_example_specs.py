"""The spec files shipped under examples/specs must stay valid and runnable."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main

SPECS = Path(__file__).resolve().parent.parent / "examples" / "specs"


@pytest.mark.skipif(not SPECS.exists(), reason="examples/specs not present")
class TestShippedSpecs:
    def test_mosaic_validates(self, capsys):
        assert main(["validate", str(SPECS / "mosaic.xml")]) == 0

    def test_mosaic_lints_clean(self, capsys):
        assert main(["lint", str(SPECS / "mosaic.xml")]) == 0

    def test_mosaic_runs_on_volunteer_grid(self, capsys):
        code = main(
            [
                "run",
                str(SPECS / "mosaic.xml"),
                "--grid",
                str(SPECS / "volunteer_grid.json"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "done" in out

    def test_mosaic_report_shows_timeline(self, capsys):
        code = main(
            [
                "run",
                str(SPECS / "mosaic.xml"),
                "--grid",
                str(SPECS / "volunteer_grid.json"),
                "--report",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "t = [" in out  # the Gantt header
