"""Health-rule engine tests: the ok → pending → firing → ok state
machine with sim-time hysteresis, alert edges on the bus, the
edge-triggered drift latch, JSON-safe snapshots, and the default rule
set the CLI installs."""

from __future__ import annotations

import pytest

from repro.events import EventBus
from repro.obs import (
    ALERT_FIRED,
    ALERT_RESOLVED,
    EstimatorSuite,
    HealthEngine,
    HealthRule,
    TimeSeriesStore,
    default_rules,
)


class _Dial:
    """A settable scalar to point rules at."""

    def __init__(self, value=0.0):
        self.value = value

    def read(self):
        return self.value


class TestHealthRuleValidation:
    def test_rejects_unknown_kind_op_and_missing_value(self):
        with pytest.raises(ValueError):
            HealthRule("r", kind="mystery", value=lambda: 0.0)
        with pytest.raises(ValueError):
            HealthRule("r", op="~", value=lambda: 0.0)
        with pytest.raises(ValueError):
            HealthRule("r")  # threshold rule with no value source

    def test_drift_rules_need_no_value(self):
        rule = HealthRule("r", kind="drift")
        assert rule.value is None

    def test_duplicate_rule_name_rejected(self):
        engine = HealthEngine()
        engine.add_rule(HealthRule("r", value=lambda: 0.0))
        with pytest.raises(ValueError):
            engine.add_rule(HealthRule("r", value=lambda: 1.0))


class TestThresholdRules:
    def test_immediate_fire_and_resolve_publish_alert_edges(self):
        bus = EventBus()
        edges = []
        bus.subscribe("obs.alert.*", lambda t, p: edges.append((t, p)))
        dial = _Dial(0.0)
        engine = HealthEngine(bus=bus)
        engine.add_rule(
            HealthRule("hot", value=dial.read, op=">", threshold=5.0)
        )
        assert engine.evaluate(0.0) == []
        assert engine.status() == "ok"

        dial.value = 9.0
        (transition,) = engine.evaluate(1.0)
        assert transition["transition"] == "fired"
        assert transition["value"] == 9.0 and transition["at"] == 1.0
        assert engine.status() == "degraded"
        (firing,) = engine.firing()
        assert firing["rule"] == "hot" and firing["fired_at"] == 1.0

        dial.value = 0.0
        (transition,) = engine.evaluate(2.0)
        assert transition["transition"] == "resolved"
        assert engine.status() == "ok" and engine.firing() == []

        assert [t for t, _ in edges] == [ALERT_FIRED, ALERT_RESOLVED]
        assert edges[0][1]["rule"] == "hot"
        assert [e["event"] for e in engine.alerts()["history"]] == [
            "fired",
            "resolved",
        ]

    def test_for_seconds_requires_a_sustained_breach(self):
        dial = _Dial(9.0)
        engine = HealthEngine()
        engine.add_rule(
            HealthRule(
                "hot", value=dial.read, op=">", threshold=5.0, for_seconds=10.0
            )
        )
        assert engine.evaluate(0.0) == []  # breach noticed: pending
        assert engine.snapshot()["rules"][0]["state"] == "pending"
        assert engine.evaluate(5.0) == []  # still pending
        (transition,) = engine.evaluate(10.0)
        assert transition["transition"] == "fired"

    def test_blip_shorter_than_for_seconds_never_fires(self):
        dial = _Dial(9.0)
        engine = HealthEngine()
        engine.add_rule(
            HealthRule(
                "hot", value=dial.read, op=">", threshold=5.0, for_seconds=10.0
            )
        )
        engine.evaluate(0.0)
        dial.value = 0.0
        assert engine.evaluate(5.0) == []  # cleared while pending: back to ok
        dial.value = 9.0
        engine.evaluate(6.0)  # pending restarts from scratch
        assert engine.evaluate(15.0) == []
        (transition,) = engine.evaluate(16.0)
        assert transition["transition"] == "fired"

    def test_resolve_after_suppresses_flapping(self):
        dial = _Dial(9.0)
        engine = HealthEngine()
        engine.add_rule(
            HealthRule(
                "hot",
                value=dial.read,
                op=">",
                threshold=5.0,
                resolve_after=10.0,
            )
        )
        engine.evaluate(0.0)
        dial.value = 0.0
        assert engine.evaluate(2.0) == []  # clear, but not for long enough
        dial.value = 9.0
        assert engine.evaluate(4.0) == []  # re-breach resets the clear clock
        dial.value = 0.0
        assert engine.evaluate(6.0) == []
        (transition,) = engine.evaluate(16.0)
        assert transition["transition"] == "resolved"

    def test_none_value_is_not_a_breach(self):
        engine = HealthEngine()
        engine.add_rule(HealthRule("r", value=lambda: None, op=">", threshold=0))
        assert engine.evaluate(0.0) == []
        assert engine.snapshot()["rules"][0]["state"] == "ok"

    def test_clock_supplies_the_default_evaluation_time(self):
        engine = HealthEngine(clock=lambda: 42.0)
        engine.add_rule(HealthRule("r", value=lambda: 1.0, op=">", threshold=0))
        (transition,) = engine.evaluate()
        assert transition["at"] == 42.0


class TestDriftRules:
    def test_bus_drift_event_latches_until_reset(self):
        bus = EventBus()
        engine = HealthEngine(bus=bus)
        engine.add_rule(HealthRule("catalog-drift", kind="drift"))
        assert engine.evaluate(0.0) == []
        bus.publish(
            "obs.drift.mttf", {"host": "h1", "observed_mttf": 3.0}
        )
        (transition,) = engine.evaluate(1.0)
        assert transition["transition"] == "fired"
        assert transition["drift"]["host"] == "h1"
        assert transition["drift"]["topic"] == "obs.drift.mttf"
        # Level-style evaluation keeps it firing: the latch holds.
        assert engine.evaluate(50.0) == []
        assert engine.status() == "degraded"
        engine.reset_drift("catalog-drift")
        (transition,) = engine.evaluate(51.0)
        assert transition["transition"] == "resolved"

    def test_detach_stops_latching(self):
        bus = EventBus()
        engine = HealthEngine(bus=bus)
        engine.add_rule(HealthRule("catalog-drift", kind="drift"))
        engine.detach()
        bus.publish("obs.drift.mttf", {"host": "h1"})
        assert engine.evaluate(0.0) == []


class TestDefaultRules:
    def test_installs_the_cli_rule_set(self):
        engine = HealthEngine()
        store = TimeSeriesStore()
        default_rules(engine, store=store, estimators=EstimatorSuite())
        names = [rule.name for rule in engine.rules]
        assert names == [
            "catalog-drift",
            "attempt-failure-probability",
            "heartbeat-loss",
            "event-flow-stalled",
        ]
        # All quiet on a fresh plane.
        assert engine.evaluate(0.0) == []
        assert engine.snapshot()["status"] == "ok"

    def test_attempt_failure_rule_reads_the_estimators(self):
        engine = HealthEngine()
        suite = EstimatorSuite()
        default_rules(engine, estimators=suite, sustain=0.0)
        activity = suite.activity("wf-1", "task")
        for _ in range(50):
            activity.record("failed")
        (transition,) = engine.evaluate(1.0)
        assert transition["rule"] == "attempt-failure-probability"
        assert transition["value"] > 0.5
