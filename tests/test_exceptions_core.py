"""Unit tests for user-defined exceptions and handler bindings."""

from __future__ import annotations

import pytest

from repro.core.exceptions import ExceptionBinding, ExceptionTable, UserException


class TestUserException:
    def test_name_required(self):
        with pytest.raises(ValueError):
            UserException("")

    def test_str_with_and_without_message(self):
        assert str(UserException("disk_full")) == "disk_full"
        assert str(UserException("disk_full", "partition /tmp")) == (
            "disk_full: partition /tmp"
        )

    def test_data_payload(self):
        exc = UserException("oom", data={"requested_gb": 12})
        assert exc.data["requested_gb"] == 12

    def test_frozen(self):
        exc = UserException("x")
        with pytest.raises(Exception):
            exc.name = "y"  # type: ignore[misc]


class TestBinding:
    def test_exact_match(self):
        b = ExceptionBinding("disk_full", handler="cleanup")
        assert b.matches("disk_full")
        assert not b.matches("disk_full_2")

    def test_glob_match(self):
        b = ExceptionBinding("disk_*", handler="h")
        assert b.matches("disk_full")
        assert b.matches("disk_quota")
        assert not b.matches("memory_full")

    def test_requires_handler_xor_rethrow(self):
        with pytest.raises(ValueError):
            ExceptionBinding("x")
        with pytest.raises(ValueError):
            ExceptionBinding("x", handler="h", rethrow_as="y")

    def test_rethrow_binding(self):
        b = ExceptionBinding("disk_full", rethrow_as="storage_error")
        assert b.rethrow_as == "storage_error"

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            ExceptionBinding("", handler="h")

    def test_specificity_ordering(self):
        exact = ExceptionBinding("disk_full", handler="a")
        long_prefix = ExceptionBinding("disk_*", handler="b")
        short_prefix = ExceptionBinding("d*", handler="c")
        assert exact.specificity() > long_prefix.specificity()
        assert long_prefix.specificity() > short_prefix.specificity()


class TestTable:
    def test_lookup_returns_none_when_unhandled(self):
        table = ExceptionTable()
        assert table.lookup("disk_full") is None

    def test_lookup_exact_beats_pattern(self):
        table = ExceptionTable(
            [
                ExceptionBinding("disk_*", handler="generic"),
                ExceptionBinding("disk_full", handler="specific"),
            ]
        )
        assert table.lookup("disk_full").handler == "specific"
        assert table.lookup("disk_quota").handler == "generic"

    def test_lookup_longest_literal_prefix_wins_among_patterns(self):
        table = ExceptionTable(
            [
                ExceptionBinding("*", handler="catchall"),
                ExceptionBinding("net_*", handler="network"),
            ]
        )
        assert table.lookup("net_partition").handler == "network"
        assert table.lookup("oom").handler == "catchall"

    def test_lookup_accepts_exception_objects(self):
        table = ExceptionTable([ExceptionBinding("oom", handler="swap")])
        assert table.lookup(UserException("oom")).handler == "swap"

    def test_add_and_len_and_iter(self):
        table = ExceptionTable()
        table.add(ExceptionBinding("a", handler="h"))
        table.add(ExceptionBinding("b*", handler="h"))
        assert len(table) == 2
        assert [b.pattern for b in table] == ["a", "b*"]

    def test_handled_names_excludes_patterns(self):
        table = ExceptionTable(
            [
                ExceptionBinding("disk_full", handler="h"),
                ExceptionBinding("net_*", handler="h"),
            ]
        )
        assert table.handled_names() == ["disk_full"]
