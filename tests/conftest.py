"""Shared fixtures for the Grid-WFS test suite (workflow-construction
helpers live in tests/helpers.py)."""

from __future__ import annotations

import pytest

from repro.events import EventBus
from repro.grid import GridConfig, SimKernel, SimReactor, SimulatedGrid


@pytest.fixture
def kernel() -> SimKernel:
    return SimKernel()


@pytest.fixture
def reactor(kernel: SimKernel) -> SimReactor:
    return SimReactor(kernel)


@pytest.fixture
def bus() -> EventBus:
    bus = EventBus()
    bus.enable_history()
    return bus


@pytest.fixture
def quiet_grid() -> SimulatedGrid:
    """A grid without heartbeats (pure prompt-crash detection) for fast,
    deterministic engine tests."""
    return SimulatedGrid(config=GridConfig(heartbeats=False))
