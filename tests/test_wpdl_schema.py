"""Unit tests for the WPDL vocabulary lint and DTD export."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.wpdl import WorkflowBuilder, serialize_wpdl
from repro.wpdl.schema import ELEMENTS, WPDL_DTD, check_vocabulary


class TestVocabulary:
    def test_clean_document_no_problems(self):
        wf = (
            WorkflowBuilder("w")
            .program("p", hosts=["h"])
            .activity("t", implement="p")
            .build()
        )
        assert check_vocabulary(serialize_wpdl(wf)) == []

    def test_unknown_element_reported(self):
        problems = check_vocabulary(
            "<Workflow name='w'><Gizmo/></Workflow>"
        )
        assert any("not allowed inside" in p for p in problems)

    def test_unknown_attribute_reported(self):
        problems = check_vocabulary(
            "<Workflow name='w'><Activity name='t' retries='3'/></Workflow>"
        )
        assert any("unknown attribute 'retries'" in p for p in problems)

    def test_misplaced_element_reported(self):
        problems = check_vocabulary(
            "<Workflow name='w'><Activity name='t'>"
            "<Option hostname='h'/></Activity></Workflow>"
        )
        assert any("<Option> not allowed" in p for p in problems)

    def test_wrong_root_reported(self):
        problems = check_vocabulary("<Pipeline name='w'/>")
        assert problems == ["root element must be <Workflow>, got <Pipeline>"]

    def test_malformed_xml_raises(self):
        with pytest.raises(ParseError):
            check_vocabulary("<Workflow")

    def test_loop_body_contents_checked(self):
        problems = check_vocabulary(
            "<Workflow name='w'>"
            "<Loop name='l' condition='x'>"
            "<Body><Bogus/></Body>"
            "</Loop></Workflow>"
        )
        assert any("Bogus" in p for p in problems)


class TestDTD:
    def test_dtd_covers_every_element_table_entry(self):
        for element in ELEMENTS:
            assert f"<!ELEMENT {element}" in WPDL_DTD

    def test_element_table_consistent_with_parser_vocabulary(self):
        # Every child listed in the table is itself a defined element.
        for _attrs, children in ELEMENTS.values():
            for child in children:
                assert child in ELEMENTS
