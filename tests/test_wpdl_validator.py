"""Unit tests for whole-graph workflow validation."""

from __future__ import annotations

import pytest

from repro.core.policy import FailurePolicy
from repro.errors import ValidationError
from repro.wpdl import WorkflowBuilder, validate, validation_problems
from repro.wpdl.model import Activity, Loop, Transition, Workflow


def problems_of(workflow):
    return validation_problems(workflow)


class TestStructure:
    def test_valid_workflow_passes(self):
        wf = (
            WorkflowBuilder("ok")
            .program("p", hosts=["h"])
            .activity("a", implement="p")
            .activity("b", implement="p")
            .transition("a", "b")
            .build(validate_graph=False)
        )
        assert problems_of(wf) == []
        assert validate(wf) is wf

    def test_empty_workflow_rejected(self):
        wf = Workflow(name="empty")
        assert any("no nodes" in p for p in problems_of(wf))

    def test_unknown_transition_endpoints(self):
        wf = Workflow(
            name="w",
            nodes={"a": Activity(name="a")},
            transitions=(Transition("a", "ghost"), Transition("phantom", "a")),
        )
        msgs = problems_of(wf)
        assert any("unknown target 'ghost'" in p for p in msgs)
        assert any("unknown source 'phantom'" in p for p in msgs)

    def test_unknown_program_reference(self):
        wf = Workflow(
            name="w", nodes={"a": Activity(name="a", implement="nope")}
        )
        assert any("unknown program" in p for p in problems_of(wf))

    def test_duplicate_transition_flagged(self):
        wf = Workflow(
            name="w",
            nodes={"a": Activity(name="a"), "b": Activity(name="b")},
            transitions=(Transition("a", "b"), Transition("a", "b")),
        )
        assert any("duplicate transition" in p for p in problems_of(wf))

    def test_cycle_detected_with_path(self):
        wf = Workflow(
            name="w",
            nodes={n: Activity(name=n) for n in "abc"},
            transitions=(
                Transition("a", "b"),
                Transition("b", "c"),
                Transition("c", "a"),
            ),
        )
        msgs = problems_of(wf)
        assert any("cycle" in p for p in msgs)

    def test_unreachable_node_flagged(self):
        wf = Workflow(
            name="w",
            nodes={n: Activity(name=n) for n in ("a", "b", "island1", "island2")},
            transitions=(
                Transition("a", "b"),
                Transition("island1", "island2"),
                Transition("island2", "island1"),
            ),
        )
        # The island is a cycle: cycle reported first (and analysis stops).
        assert any("cycle" in p for p in problems_of(wf))

    def test_orphan_island_unreachable(self):
        # a->b reachable; c is its own entry so it is fine; but d fed only
        # by c is reachable too.  Make a genuinely unreachable node by
        # giving it an incoming edge from inside a closed pair... simplest:
        # all nodes have predecessors -> no entry at all.
        wf = Workflow(
            name="w",
            nodes={n: Activity(name=n) for n in ("a", "b")},
            transitions=(Transition("a", "b"), Transition("b", "a")),
        )
        assert any("cycle" in p for p in problems_of(wf))


class TestPolicies:
    def test_replica_needs_multiple_options(self):
        wf = (
            WorkflowBuilder("w")
            .program("p", hosts=["only-one"])
            .activity("t", implement="p", policy=FailurePolicy.replica())
            .build(validate_graph=False)
        )
        assert any("only" in p and "option" in p for p in problems_of(wf))

    def test_replica_on_dummy_rejected(self):
        wf = Workflow(
            name="w",
            nodes={"t": Activity(name="t", policy=FailurePolicy.replica())},
        )
        msgs = problems_of(wf)
        assert any("replica" in p for p in msgs)

    def test_replica_with_enough_options_ok(self):
        wf = (
            WorkflowBuilder("w")
            .program("p", hosts=["h1", "h2", "h3"])
            .activity("t", implement="p", policy=FailurePolicy.replica())
            .build(validate_graph=False)
        )
        assert problems_of(wf) == []

    def test_backoff_without_interval_reported(self):
        wf = (
            WorkflowBuilder("w")
            .program("p", hosts=["h"])
            .activity(
                "t",
                implement="p",
                policy=FailurePolicy(max_tries=3, backoff_factor=2.0),
            )
            .build(validate_graph=False)
        )
        assert any("backoff" in p for p in problems_of(wf))

    def test_max_interval_below_interval_reported(self):
        wf = (
            WorkflowBuilder("w")
            .program("p", hosts=["h"])
            .activity(
                "t",
                implement="p",
                policy=FailurePolicy(max_tries=3, interval=5.0, max_interval=1.0),
            )
            .build(validate_graph=False)
        )
        assert any("max_interval" in p for p in problems_of(wf))

    def test_consistent_backoff_policy_ok(self):
        wf = (
            WorkflowBuilder("w")
            .program("p", hosts=["h"])
            .activity(
                "t",
                implement="p",
                policy=FailurePolicy.backoff_retrying(
                    None, interval=1.0, backoff_factor=2.0, max_interval=8.0
                ),
            )
            .build(validate_graph=False)
        )
        assert problems_of(wf) == []


class TestConditionsAndRefs:
    def test_bad_expr_condition_flagged(self):
        wf = (
            WorkflowBuilder("w")
            .dummy("a")
            .dummy("b")
            .when("a", "import os", "b")
            .build(validate_graph=False)
        )
        assert any("condition" in p for p in problems_of(wf))

    def test_bad_loop_condition_flagged(self):
        body = WorkflowBuilder("body").dummy("t").build()
        wf = (
            WorkflowBuilder("w")
            .loop("l", body, "open('x')")
            .build(validate_graph=False)
        )
        assert any("loop 'l'" in p for p in problems_of(wf))

    def test_loop_body_validated_recursively(self):
        bad_body = Workflow(
            name="body",
            nodes={"t": Activity(name="t", implement="missing")},
        )
        wf = Workflow(
            name="w",
            nodes={"l": Loop(name="l", body=bad_body, condition="x")},
        )
        assert any("unknown program" in p for p in problems_of(wf))

    def test_unknown_value_ref_flagged(self):
        wf = (
            WorkflowBuilder("w")
            .program("p", hosts=["h"])
            .activity("a", implement="p", outputs=["total"])
            .activity(
                "b",
                implement="p",
                inputs=[__import__("repro.wpdl.model", fromlist=["Parameter"]).Parameter(
                    name="x", ref="bogus"
                )],
            )
            .transition("a", "b")
            .build(validate_graph=False)
        )
        assert any("unknown output 'bogus'" in p for p in problems_of(wf))

    def test_ref_to_declared_output_ok(self):
        from repro.wpdl.model import Parameter

        wf = (
            WorkflowBuilder("w")
            .program("p", hosts=["h"])
            .activity("a", implement="p", outputs=["total"])
            .activity("b", implement="p", inputs=[Parameter(name="x", ref="total")])
            .transition("a", "b")
            .build(validate_graph=False)
        )
        assert problems_of(wf) == []

    def test_ref_to_activity_name_ok(self):
        from repro.wpdl.model import Parameter

        wf = (
            WorkflowBuilder("w")
            .program("p", hosts=["h"])
            .activity("a", implement="p")
            .activity("b", implement="p", inputs=[Parameter(name="x", ref="a")])
            .transition("a", "b")
            .build(validate_graph=False)
        )
        assert problems_of(wf) == []


class TestErrorAggregation:
    def test_all_problems_reported_together(self):
        wf = Workflow(
            name="w",
            nodes={
                "a": Activity(name="a", implement="missing"),
                "b": Activity(name="b", policy=FailurePolicy.replica()),
            },
            transitions=(Transition("a", "ghost"),),
        )
        with pytest.raises(ValidationError) as exc_info:
            validate(wf)
        message = str(exc_info.value)
        assert "unknown program" in message
        assert "ghost" in message
        assert "replica" in message
