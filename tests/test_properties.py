"""Property-based tests (hypothesis) on core data structures and invariants.

Covers the properties DESIGN.md commits to: WPDL parse∘serialize identity,
navigator invariants over random DAGs, task state machine legality, sampler
monotonicity/dominance, and condition-evaluator safety.
"""

from __future__ import annotations


import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ExceptionBinding, ExceptionTable
from repro.core.policy import FailurePolicy
from repro.core.states import LEGAL_TRANSITIONS, TaskState, TaskStateMachine
from repro.engine.instance import NodeStatus, WorkflowInstance, WorkflowStatus
from repro.engine.navigator import (
    evaluate_outcome,
    fire_outgoing_edges,
    propagate_skips,
    ready_nodes,
)
from repro.errors import DetectionError, SpecificationError
from repro.sim.analytical import checkpoint_expected_time, retry_expected_time
from repro.sim.params import SimulationParams
from repro.sim.samplers import sample_checkpointing, sample_retry
from repro.wpdl import parse_wpdl, serialize_wpdl
from repro.wpdl.conditions import compile_condition
from repro.wpdl.model import Activity, JoinMode, Option, Program, Transition, Workflow

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8
)


@st.composite
def policies(draw):
    return FailurePolicy(
        max_tries=draw(st.one_of(st.none(), st.integers(1, 50))),
        interval=draw(st.floats(0, 100, allow_nan=False)),
        restart_from_checkpoint=draw(st.booleans()),
        retry_on_exception=draw(st.booleans()),
        attempt_timeout=draw(
            st.one_of(st.none(), st.floats(0.1, 1e4, allow_nan=False))
        ),
    )


@st.composite
def rethrows(draw):
    from repro.wpdl.model import Rethrow

    pattern = draw(names) + draw(st.sampled_from(["", "*"]))
    return Rethrow(pattern=pattern, as_name=draw(names))


@st.composite
def workflows(draw):
    """Random DAGs: nodes a0..aN, edges only forward (i < j) — acyclic by
    construction; programs attached to every activity; random join modes."""
    n = draw(st.integers(2, 7))
    node_names = [f"a{i}" for i in range(n)]
    nodes = {}
    for name in node_names:
        dummy = draw(st.booleans())
        nodes[name] = Activity(
            name=name,
            implement=None if dummy else "prog",
            policy=draw(policies()) if not dummy else FailurePolicy(),
            join=draw(st.sampled_from([JoinMode.AND, JoinMode.OR])),
            rethrows=tuple(draw(st.lists(rethrows(), max_size=2)))
            if not dummy
            else (),
        )
    edges = []
    for j in range(1, n):
        # Every non-entry node gets at least one incoming edge, keeping the
        # whole graph reachable from a0.
        sources = draw(
            st.lists(
                st.integers(0, j - 1), min_size=1, max_size=min(3, j), unique=True
            )
        )
        for i in sources:
            edges.append(Transition(f"a{i}", f"a{j}"))
    return Workflow(
        name="random",
        nodes=nodes,
        transitions=tuple(edges),
        programs={"prog": Program("prog", (Option(hostname="h1"),))},
    )


# ---------------------------------------------------------------------------
# WPDL round-trip
# ---------------------------------------------------------------------------


class TestWpdlRoundTrip:
    @given(workflows())
    @settings(max_examples=60, deadline=None)
    def test_serialize_parse_identity(self, wf):
        assert parse_wpdl(serialize_wpdl(wf), validate_graph=False) == wf

    @given(workflows())
    @settings(max_examples=30, deadline=None)
    def test_serialization_is_deterministic(self, wf):
        assert serialize_wpdl(wf) == serialize_wpdl(wf)


# ---------------------------------------------------------------------------
# Navigator invariants on random DAGs
# ---------------------------------------------------------------------------


def drive_to_completion(instance, status_for):
    """Resolve every launched node with status_for(name); returns visit order."""
    order = []
    guard = 0
    while True:
        guard += 1
        assert guard < 1000, "navigation did not converge"
        propagate_skips(instance)
        ready = ready_nodes(instance)
        if not ready:
            break
        for name in ready:
            instance.node(name).status = NodeStatus.RUNNING
        for name in ready:
            status = status_for(name)
            instance.node(name).status = status
            fire_outgoing_edges(instance, name, status)
            order.append(name)
    return order


class TestNavigatorProperties:
    @given(workflows())
    @settings(max_examples=80, deadline=None)
    def test_all_success_visits_every_node_respecting_joins(self, wf):
        instance = WorkflowInstance(wf)
        order = drive_to_completion(instance, lambda n: NodeStatus.DONE)
        assert set(order) == set(wf.nodes)
        position = {name: i for i, name in enumerate(order)}
        for name, node in wf.nodes.items():
            preds = [t.source for t in wf.transitions if t.target == name]
            if not preds:
                continue
            if node.join is JoinMode.AND:
                # AND joins wait for every predecessor.
                assert all(position[p] < position[name] for p in preds)
            else:
                # OR joins activate on the FIRST predecessor — later ones
                # may legitimately finish after the join itself.
                assert any(position[p] < position[name] for p in preds)
        assert evaluate_outcome(instance) is WorkflowStatus.DONE

    @given(workflows(), st.data())
    @settings(
        max_examples=80,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_failures_always_terminate_with_verdict(self, wf, data):
        fail = data.draw(
            st.sets(st.sampled_from(sorted(wf.nodes)), max_size=len(wf.nodes))
        )
        instance = WorkflowInstance(wf)
        drive_to_completion(
            instance,
            lambda n: NodeStatus.FAILED if n in fail else NodeStatus.DONE,
        )
        propagate_skips(instance)
        # Termination: every node resolved, outcome decidable, no deadlock.
        assert instance.terminal()
        assert evaluate_outcome(instance) in (
            WorkflowStatus.DONE,
            WorkflowStatus.FAILED,
        )

    @given(workflows())
    @settings(max_examples=40, deadline=None)
    def test_entry_failure_fails_workflow(self, wf):
        entry = wf.entry_nodes()[0]
        instance = WorkflowInstance(wf)
        drive_to_completion(
            instance,
            lambda n: NodeStatus.FAILED if n == entry else NodeStatus.DONE,
        )
        propagate_skips(instance)
        # a0 is the ancestor of everything (graph is built rooted at a0):
        # its unhandled failure can never produce success.
        assert evaluate_outcome(instance) is WorkflowStatus.FAILED


# ---------------------------------------------------------------------------
# State machine
# ---------------------------------------------------------------------------


class TestStateMachineProperties:
    @given(st.lists(st.sampled_from(list(TaskState)), max_size=6))
    def test_machine_accepts_exactly_the_legal_relation(self, path):
        machine = TaskStateMachine("t")
        for target in path:
            legal = (machine.state, target) in LEGAL_TRANSITIONS
            if legal:
                machine.transition(target)
            else:
                with pytest.raises(DetectionError):
                    machine.transition(target)
                break


# ---------------------------------------------------------------------------
# Exception table
# ---------------------------------------------------------------------------


class TestExceptionTableProperties:
    @given(
        st.lists(names, min_size=1, max_size=6, unique=True),
        names,
    )
    def test_exact_binding_always_wins(self, patterns, probe):
        bindings = [ExceptionBinding(p + "*", handler="pat") for p in patterns]
        bindings.append(ExceptionBinding(probe, handler="exact"))
        table = ExceptionTable(bindings)
        assert table.lookup(probe).handler == "exact"

    @given(st.lists(names, min_size=1, max_size=6))
    def test_lookup_result_actually_matches(self, patterns):
        table = ExceptionTable(
            [ExceptionBinding(p, handler="h") for p in set(patterns)]
        )
        for p in patterns:
            found = table.lookup(p)
            assert found is not None and found.matches(p)


# ---------------------------------------------------------------------------
# Samplers: stochastic-dominance style properties
# ---------------------------------------------------------------------------


class TestSamplerProperties:
    @given(st.floats(5.0, 200.0), st.floats(5.0, 200.0))
    @settings(max_examples=20, deadline=None)
    def test_retry_mean_monotone_in_mttf(self, m1, m2):
        lo, hi = sorted((m1, m2))
        if hi - lo < 1.0:
            return
        p_lo = SimulationParams(mttf=lo, runs=8000)
        p_hi = SimulationParams(mttf=hi, runs=8000)
        mean_lo = sample_retry(p_lo).mean()
        mean_hi = sample_retry(p_hi).mean()
        ana_lo = retry_expected_time(30.0, 1 / lo)
        ana_hi = retry_expected_time(30.0, 1 / hi)
        assert ana_hi <= ana_lo
        # Sampled means track the analytical ordering within noise.
        assert mean_hi <= mean_lo * 1.25

    @given(st.floats(8.0, 100.0))
    @settings(max_examples=20, deadline=None)
    def test_samples_never_below_failure_free_time(self, mttf):
        # mttf >= 8 keeps λF <= 3.75: the retry process needs e^{λF}
        # attempts on average, so smaller MTTFs are astronomically slow by
        # *physics*, not by implementation (λF = 15 means ~3M attempts).
        params = SimulationParams(mttf=mttf, runs=2000)
        assert sample_retry(params).min() >= 30.0 - 1e-9
        assert sample_checkpointing(params).min() >= 40.0 - 1e-9

    @given(st.floats(2.0, 100.0), st.integers(1, 60))
    @settings(max_examples=20, deadline=None)
    def test_checkpoint_sampler_tracks_analytical_for_any_k(self, mttf, k):
        # Keep the per-segment exposure λa modest: e^{λa} attempts per
        # segment make extreme corners (tiny MTTF with K=1) both absurdly
        # slow to sample and heavy-tailed beyond any fixed MC tolerance.
        assume(30.0 / (mttf * k) <= 2.0)
        params = SimulationParams(mttf=mttf, checkpoints=k, runs=30_000)
        sim = sample_checkpointing(params).mean()
        ana = checkpoint_expected_time(
            30.0, 1 / mttf, checkpoint_overhead=0.5, recovery_time=0.5,
            checkpoints=k,
        )
        assert abs(sim - ana) / ana < 0.08


# ---------------------------------------------------------------------------
# Condition evaluator safety
# ---------------------------------------------------------------------------


class TestConditionProperties:
    @given(st.text(max_size=40))
    @settings(max_examples=200)
    def test_arbitrary_text_never_escapes_the_sandbox(self, text):
        """compile_condition either raises SpecificationError or returns a
        program; it never raises anything else and never executes code."""
        try:
            prog = compile_condition(text)
        except SpecificationError:
            return
        # If it compiled, evaluation with empty variables must be total
        # (bool or SpecificationError; nothing else).
        try:
            result = prog.evaluate({})
        except SpecificationError:
            return
        assert isinstance(result, bool)

    @given(
        st.integers(-1000, 1000),
        st.integers(-1000, 1000),
    )
    def test_comparison_semantics_match_python(self, a, b):
        variables = {"a": a, "b": b}
        assert compile_condition("a < b").evaluate(variables) is (a < b)
        assert compile_condition("a >= b").evaluate(variables) is (a >= b)
        assert compile_condition("a == b").evaluate(variables) is (a == b)
