"""Validation tests for the Monte-Carlo samplers (the paper's Figures 8–9
methodology: simulation must agree with the analytical models)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.analytical import checkpoint_expected_time, retry_expected_time
from repro.sim.params import SimulationParams
from repro.sim.samplers import (
    TECHNIQUES,
    sample_checkpointing,
    sample_replication,
    sample_replication_checkpointing,
    sample_retry,
    sample_technique,
)
from repro.sim.stats import relative_error, summarize

RUNS = 60_000  # enough for sub-percent agreement, fast enough for CI


class TestRetrySampler:
    @pytest.mark.parametrize("mttf", [10.0, 18.0, 30.0, 100.0])
    def test_matches_analytical_model_figure8(self, mttf):
        params = SimulationParams(mttf=mttf, runs=RUNS)
        sim = summarize(sample_retry(params))
        ana = retry_expected_time(30.0, 1.0 / mttf)
        assert relative_error(sim.mean, ana) < 0.02

    def test_no_failures_is_deterministic(self):
        params = SimulationParams(runs=100)  # mttf = inf
        samples = sample_retry(params)
        assert np.all(samples == 30.0)

    def test_downtime_included(self):
        params = SimulationParams(mttf=20.0, downtime=30.0, runs=RUNS)
        sim = summarize(sample_retry(params))
        ana = retry_expected_time(30.0, 0.05, downtime=30.0)
        assert relative_error(sim.mean, ana) < 0.03

    def test_samples_bounded_below_by_f(self):
        params = SimulationParams(mttf=15.0, runs=5000)
        assert sample_retry(params).min() >= 30.0

    def test_reproducible_given_seed(self):
        params = SimulationParams(mttf=20.0, runs=1000, seed=99)
        assert np.array_equal(sample_retry(params), sample_retry(params))

    def test_different_seeds_differ(self):
        a = sample_retry(SimulationParams(mttf=20.0, runs=1000, seed=1))
        b = sample_retry(SimulationParams(mttf=20.0, runs=1000, seed=2))
        assert not np.array_equal(a, b)


class TestCheckpointSampler:
    @pytest.mark.parametrize("mttf", [2.0, 10.0, 40.0, 100.0])
    def test_matches_analytical_model_figure9(self, mttf):
        params = SimulationParams(mttf=mttf, runs=RUNS)
        sim = summarize(sample_checkpointing(params))
        ana = checkpoint_expected_time(
            30.0,
            1.0 / mttf,
            checkpoint_overhead=0.5,
            recovery_time=0.5,
            checkpoints=20,
        )
        assert relative_error(sim.mean, ana) < 0.02

    def test_no_failures_cost_is_f_plus_kc(self):
        params = SimulationParams(runs=100)
        samples = sample_checkpointing(params)
        assert np.all(samples == pytest.approx(40.0))  # 30 + 20*0.5

    def test_downtime_included(self):
        params = SimulationParams(mttf=20.0, downtime=150.0, runs=RUNS)
        sim = summarize(sample_checkpointing(params))
        ana = checkpoint_expected_time(
            30.0, 0.05, checkpoint_overhead=0.5, recovery_time=0.5,
            checkpoints=20, downtime=150.0,
        )
        # Downtime dominates the variance; allow a wider band.
        assert relative_error(sim.mean, ana) < 0.05

    def test_samples_bounded_below_by_failure_free_cost(self):
        params = SimulationParams(mttf=10.0, runs=5000)
        assert sample_checkpointing(params).min() >= 40.0 - 1e-9


class TestReplicationSamplers:
    def test_replication_is_min_of_n(self):
        params = SimulationParams(mttf=20.0, runs=20_000, replicas=3)
        single = summarize(sample_retry(params)).mean
        replicated = summarize(sample_replication(params)).mean
        assert replicated < single

    def test_more_replicas_never_slower(self):
        means = []
        for n in (1, 2, 4, 8):
            params = SimulationParams(mttf=15.0, runs=20_000, replicas=n)
            means.append(summarize(sample_replication(params)).mean)
        assert means == sorted(means, reverse=True)

    def test_single_replica_equals_retry_distribution(self):
        params = SimulationParams(mttf=20.0, runs=30_000, replicas=1)
        a = summarize(sample_replication(params)).mean
        b = summarize(sample_retry(params)).mean
        assert relative_error(a, b) < 0.05

    def test_replication_checkpointing_combination(self):
        params = SimulationParams(mttf=10.0, runs=20_000)
        combo = summarize(sample_replication_checkpointing(params)).mean
        ckpt_only = summarize(sample_checkpointing(params)).mean
        assert combo < ckpt_only


class TestDispatch:
    def test_all_techniques_dispatchable(self):
        params = SimulationParams(mttf=20.0, runs=500)
        for technique in TECHNIQUES:
            samples = sample_technique(technique, params)
            assert samples.shape == (500,)
            assert np.all(samples >= 30.0)

    def test_unknown_technique(self):
        with pytest.raises(SimulationError, match="unknown technique"):
            sample_technique("prayer", SimulationParams())

    def test_runs_override(self):
        params = SimulationParams(mttf=20.0, runs=10_000)
        assert sample_technique("retrying", params, runs=123).shape == (123,)


class TestDowntimeDistribution:
    def test_invalid_distribution_rejected(self):
        with pytest.raises(SimulationError):
            SimulationParams(downtime_distribution="weibull")

    def test_fixed_downtime_is_deterministic_per_failure(self):
        # With fixed downtime = D, every failure adds exactly D; with a
        # single failure the sample equals lost-work + D + F exactly,
        # so the *minimum* over samples is >= F and the per-failure cost
        # floor shows in the distribution support.
        params = SimulationParams(
            mttf=20.0, downtime=100.0, downtime_distribution="fixed",
            runs=20_000,
        )
        samples = sample_retry(params)
        failed_runs = samples[samples > 30.0 + 1e-9]
        # Any run with at least one failure paid at least one full fixed D.
        assert failed_runs.min() >= 100.0

    def test_mean_insensitive_for_single_process_techniques(self):
        exp_params = SimulationParams(mttf=20.0, downtime=150.0, runs=60_000)
        fixed_params = SimulationParams(
            mttf=20.0, downtime=150.0, downtime_distribution="fixed",
            runs=60_000,
        )
        for sampler in (sample_retry, sample_checkpointing):
            e = summarize(sampler(exp_params))
            f = summarize(sampler(fixed_params))
            assert abs(e.mean - f.mean) <= 2 * (e.ci_halfwidth + f.ci_halfwidth)

    def test_replication_prefers_spread(self):
        exp_params = SimulationParams(mttf=20.0, downtime=150.0, runs=40_000)
        fixed_params = SimulationParams(
            mttf=20.0, downtime=150.0, downtime_distribution="fixed",
            runs=40_000,
        )
        assert (
            sample_replication(fixed_params).mean()
            > sample_replication(exp_params).mean()
        )


class TestDowntimeDraws:
    """`_downtime_draws` must return an ndarray for *every* distribution —
    the degenerate branches used to be able to return scalars, which
    silently broadcast in some samplers and broke per-run indexing in
    others."""

    @pytest.mark.parametrize(
        "params",
        [
            SimulationParams(mttf=20.0, downtime=0.0, runs=10),
            SimulationParams(
                mttf=20.0, downtime=0.0, downtime_distribution="fixed", runs=10
            ),
            SimulationParams(
                mttf=20.0, downtime=5.0, downtime_distribution="fixed", runs=10
            ),
            SimulationParams(mttf=20.0, downtime=5.0, runs=10),
        ],
        ids=["zero-exp", "zero-fixed", "fixed", "exponential"],
    )
    def test_always_ndarray_of_requested_size(self, params):
        from repro.sim.samplers import _downtime_draws

        draws = _downtime_draws(params, np.random.default_rng(0), 7)
        assert isinstance(draws, np.ndarray)
        assert draws.shape == (7,)
        assert draws.dtype == np.float64

    def test_degenerate_branches_consume_no_rng_state(self):
        from repro.sim.samplers import _downtime_draws

        rng = np.random.default_rng(1)
        _downtime_draws(SimulationParams(mttf=20.0, downtime=0.0), rng, 5)
        _downtime_draws(
            SimulationParams(
                mttf=20.0, downtime=3.0, downtime_distribution="fixed"
            ),
            rng,
            5,
        )
        untouched = np.random.default_rng(1)
        np.testing.assert_array_equal(rng.random(4), untouched.random(4))
