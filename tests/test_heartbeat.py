"""Unit tests for the heartbeat monitor (host liveness)."""

from __future__ import annotations

import pytest

from repro.detection.heartbeat import (
    HOST_RECOVERED,
    HOST_SUSPECTED,
    HeartbeatMonitor,
)
from repro.detection.messages import Heartbeat


@pytest.fixture
def monitor(reactor, bus):
    m = HeartbeatMonitor(reactor, bus, timeout=5.0, sweep_interval=1.0)
    m.start()
    return m


def suspected_events(bus):
    return [r.payload for r in bus.history if r.topic == HOST_SUSPECTED]


def recovered_events(bus):
    return [r.payload for r in bus.history if r.topic == HOST_RECOVERED]


class TestSuspicion:
    def test_silent_host_suspected_after_timeout(self, kernel, monitor, bus):
        monitor.observe(Heartbeat(hostname="n1", seq=0))
        kernel.run_until(10.0)
        assert monitor.is_suspected("n1")
        assert suspected_events(bus) == ["n1"]

    def test_beating_host_never_suspected(self, kernel, reactor, monitor, bus):
        def beat(seq=[0]):
            monitor.observe(Heartbeat(hostname="n1", seq=seq[0]))
            seq[0] += 1
            reactor.call_later(2.0, beat)

        beat()
        kernel.run_until(30.0)
        assert not monitor.is_suspected("n1")
        assert suspected_events(bus) == []

    def test_suspicion_fires_once_until_recovery(self, kernel, monitor, bus):
        monitor.observe(Heartbeat(hostname="n1", seq=0))
        kernel.run_until(50.0)
        assert suspected_events(bus) == ["n1"]  # not re-published every sweep

    def test_watch_arms_timeout_before_first_beat(self, kernel, monitor, bus):
        monitor.watch("never-beats")
        kernel.run_until(10.0)
        assert monitor.is_suspected("never-beats")

    def test_multiple_hosts_tracked_independently(self, kernel, reactor, monitor):
        monitor.observe(Heartbeat(hostname="dead", seq=0))

        def beat(seq=[0]):
            monitor.observe(Heartbeat(hostname="alive", seq=seq[0]))
            seq[0] += 1
            reactor.call_later(2.0, beat)

        beat()
        kernel.run_until(12.0)
        assert monitor.is_suspected("dead")
        assert not monitor.is_suspected("alive")
        assert monitor.suspected_hosts() == ["dead"]


class TestRecovery:
    def test_resumed_beats_revoke_suspicion(self, kernel, reactor, monitor, bus):
        monitor.observe(Heartbeat(hostname="n1", seq=0))
        reactor.call_later(20.0, lambda: monitor.observe(Heartbeat(hostname="n1", seq=1)))
        kernel.run_until(25.0)
        assert not monitor.is_suspected("n1")
        assert recovered_events(bus) == ["n1"]
        assert monitor.false_suspicions == 1

    def test_liveness_record_tracks_last_beat(self, kernel, monitor):
        monitor.observe(Heartbeat(hostname="n1", seq=3))
        record = monitor.liveness("n1")
        assert record.last_seq == 3
        assert record.suspicions == 0


class TestLifecycle:
    def test_stop_halts_sweeps(self, kernel, monitor, bus):
        monitor.observe(Heartbeat(hostname="n1", seq=0))
        monitor.stop()
        kernel.run_until(60.0)
        assert suspected_events(bus) == []

    def test_invalid_timeout_rejected(self, reactor, bus):
        with pytest.raises(ValueError):
            HeartbeatMonitor(reactor, bus, timeout=0.0)

    def test_default_sweep_interval_is_half_timeout(self, reactor, bus):
        m = HeartbeatMonitor(reactor, bus, timeout=8.0)
        assert m.sweep_interval == 4.0
