"""Unit tests for the per-task failure detector (paper's state rules)."""

from __future__ import annotations

import pytest

from repro.core.exceptions import UserException
from repro.core.states import TaskState
from repro.detection.detector import (
    TASK_ACTIVE,
    TASK_DONE,
    TASK_EXCEPTION,
    TASK_FAILED,
    FailureDetector,
)
from repro.detection.messages import (
    CheckpointNotice,
    Done,
    ExceptionNotice,
    Heartbeat,
    TaskEnd,
    TaskStart,
)
from repro.errors import DetectionError


@pytest.fixture
def detector(reactor, bus):
    return FailureDetector(reactor, bus)


def outcomes(bus, topic):
    return [r.payload for r in bus.history if r.topic == topic]


def track(detector, job="j1", activity="act", host="n1"):
    detector.track(job, activity, host)
    return job


class TestDeterminationRules:
    def test_done_with_taskend_is_success(self, detector, bus):
        job = track(detector)
        detector.deliver(TaskStart(job_id=job, hostname="n1"))
        detector.deliver(TaskEnd(job_id=job, hostname="n1", result=7))
        detector.deliver(Done(job_id=job, hostname="n1"))
        done = outcomes(bus, TASK_DONE)
        assert len(done) == 1
        assert done[0].state is TaskState.DONE
        assert done[0].result == 7
        assert done[0].reason == "done-with-taskend"

    def test_done_without_taskend_is_task_crash(self, detector, bus):
        job = track(detector)
        detector.deliver(TaskStart(job_id=job, hostname="n1"))
        detector.deliver(Done(job_id=job, hostname="n1", exit_code=0))
        failed = outcomes(bus, TASK_FAILED)
        assert len(failed) == 1
        assert failed[0].reason == "done-without-taskend"

    def test_nonzero_exit_with_taskend_still_fails(self, detector, bus):
        job = track(detector)
        detector.deliver(TaskStart(job_id=job, hostname="n1"))
        detector.deliver(TaskEnd(job_id=job, hostname="n1"))
        detector.deliver(Done(job_id=job, hostname="n1", exit_code=3))
        assert outcomes(bus, TASK_DONE) == []
        assert len(outcomes(bus, TASK_FAILED)) == 1

    def test_host_crashed_done_fails(self, detector, bus):
        job = track(detector)
        detector.deliver(TaskStart(job_id=job, hostname="n1"))
        detector.deliver(TaskEnd(job_id=job, hostname="n1"))
        detector.deliver(Done(job_id=job, hostname="n1", host_crashed=True))
        failed = outcomes(bus, TASK_FAILED)
        assert failed and failed[0].reason == "host-crashed"

    def test_exception_notice_surfaces_user_exception(self, detector, bus):
        job = track(detector)
        detector.deliver(TaskStart(job_id=job, hostname="n1"))
        detector.deliver(
            ExceptionNotice(
                job_id=job, hostname="n1", exception=UserException("disk_full")
            )
        )
        exc = outcomes(bus, TASK_EXCEPTION)
        assert len(exc) == 1
        assert exc[0].exception.name == "disk_full"

    def test_taskstart_publishes_active(self, detector, bus):
        job = track(detector)
        detector.deliver(TaskStart(job_id=job, hostname="n1"))
        active = outcomes(bus, TASK_ACTIVE)
        assert len(active) == 1 and active[0].state is TaskState.ACTIVE

    def test_done_before_taskstart_promotes_to_active_first(self, detector, bus):
        # A submission rejected host-side never sends TaskStart.
        job = track(detector)
        detector.deliver(Done(job_id=job, hostname="n1", exit_code=127))
        assert len(outcomes(bus, TASK_FAILED)) == 1

    def test_checkpoint_flag_recorded_and_reported(self, detector, bus):
        job = track(detector)
        detector.deliver(TaskStart(job_id=job, hostname="n1"))
        detector.deliver(
            CheckpointNotice(job_id=job, hostname="n1", flag="k3", progress=0.6)
        )
        assert detector.checkpoint_flag(job) == "k3"
        detector.deliver(Done(job_id=job, hostname="n1", exit_code=1))
        failed = outcomes(bus, TASK_FAILED)
        assert failed[0].checkpoint_flag == "k3"

    def test_messages_after_terminal_ignored(self, detector, bus):
        job = track(detector)
        detector.deliver(TaskStart(job_id=job, hostname="n1"))
        detector.deliver(Done(job_id=job, hostname="n1", exit_code=1))
        detector.deliver(TaskEnd(job_id=job, hostname="n1"))  # late
        detector.deliver(Done(job_id=job, hostname="n1"))  # duplicate
        assert len(outcomes(bus, TASK_FAILED)) == 1
        assert outcomes(bus, TASK_DONE) == []

    def test_unknown_job_messages_ignored(self, detector, bus):
        detector.deliver(Done(job_id="ghost", hostname="n1"))
        assert outcomes(bus, TASK_FAILED) == []


class TestRegistration:
    def test_double_track_rejected(self, detector):
        track(detector)
        with pytest.raises(DetectionError):
            detector.track("j1", "act", "n1")

    def test_forget_stops_tracking(self, detector, bus):
        job = track(detector)
        detector.forget(job)
        detector.deliver(Done(job_id=job, hostname="n1"))
        assert outcomes(bus, TASK_FAILED) == []
        assert detector.state_of(job) is None

    def test_submission_rejected_fails_without_tracking_first(self, detector, bus):
        detector.submission_rejected("jx", "act", "n1", reason="host-down")
        failed = outcomes(bus, TASK_FAILED)
        assert failed and failed[0].reason == "host-down"

    def test_attempt_log_records_messages(self, detector):
        job = track(detector)
        detector.deliver(TaskStart(job_id=job, hostname="n1"))
        detector.deliver(Done(job_id=job, hostname="n1"))
        assert len(detector.attempt_log(job)) == 2


class TestHostSuspicionIntegration:
    def test_suspected_host_fails_its_attempts(self, reactor, kernel, bus):
        detector = FailureDetector(reactor, bus, heartbeat_timeout=5.0)
        detector.start()
        detector.track("j1", "act", "flaky-host")
        detector.deliver(TaskStart(job_id="j1", hostname="flaky-host"))
        detector.deliver(Heartbeat(hostname="flaky-host", seq=0))
        kernel.run_until(20.0)  # silence > timeout
        failed = outcomes(bus, TASK_FAILED)
        assert failed and failed[0].reason == "host-suspected"
        detector.stop()

    def test_attempts_on_other_hosts_unaffected(self, reactor, kernel, bus):
        detector = FailureDetector(reactor, bus, heartbeat_timeout=5.0)
        detector.start()
        detector.track("j1", "a", "dead")
        detector.track("j2", "b", "alive")
        detector.deliver(Heartbeat(hostname="dead", seq=0))

        def keep_beating(seq=[0]):
            detector.deliver(Heartbeat(hostname="alive", seq=seq[0]))
            seq[0] += 1
            reactor.call_later(1.0, keep_beating)

        keep_beating()
        kernel.run_until(20.0)
        failed = outcomes(bus, TASK_FAILED)
        assert [o.job_id for o in failed] == ["j1"]
        detector.stop()
