"""Tests for the span recorder: dual clocks, nesting, event-driven
open/close, the bounded ring and the disabled path."""

from __future__ import annotations

from repro.obs import Span, SpanRecorder


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestExplicitSpans:
    def test_begin_end_stamps_both_clocks(self):
        clock = FakeClock()
        rec = SpanRecorder(clock=clock)
        span = rec.begin("node.run", node="FU")
        clock.now = 30.0
        rec.end(span)
        assert span.sim_start == 0.0
        assert span.sim_end == 30.0
        assert span.sim_duration == 30.0
        assert span.wall_end >= span.wall_start
        assert not span.open

    def test_end_is_idempotent(self):
        clock = FakeClock()
        rec = SpanRecorder(clock=clock)
        span = rec.begin("s")
        clock.now = 5.0
        rec.end(span)
        clock.now = 50.0
        rec.end(span)
        assert span.sim_end == 5.0

    def test_explicit_parent_links(self):
        rec = SpanRecorder(clock=FakeClock())
        outer = rec.begin("workflow.run")
        inner = rec.begin("node.run", parent=outer.id)
        assert inner.parent == outer.id
        assert outer.parent is None

    def test_instant_has_zero_duration(self):
        clock = FakeClock()
        clock.now = 7.0
        rec = SpanRecorder(clock=clock)
        span = rec.instant("marker")
        assert span.sim_start == span.sim_end == 7.0
        assert span.sim_duration == 0.0

    def test_interval_records_future_end(self):
        rec = SpanRecorder(clock=FakeClock())
        span = rec.interval("recovery.backoff", 10.0, 25.0, activity="FU")
        assert (span.sim_start, span.sim_end) == (10.0, 25.0)
        assert span.labels == {"activity": "FU"}
        assert not span.open

    def test_unbound_clock_stamps_zero_then_binds(self):
        rec = SpanRecorder()
        assert rec.begin("a").sim_start == 0.0
        clock = FakeClock()
        clock.now = 3.0
        rec.bind_clock(clock)
        assert rec.begin("b").sim_start == 3.0


class TestLexicalNesting:
    def test_with_blocks_nest(self):
        rec = SpanRecorder(clock=FakeClock())
        with rec.span("outer") as outer:
            with rec.span("inner") as inner:
                assert inner.parent == outer.id
        with rec.span("sibling") as sibling:
            assert sibling.parent is None
        assert all(s.sim_end is not None for s in rec.spans)

    def test_event_spans_do_not_join_the_stack(self):
        rec = SpanRecorder(clock=FakeClock())
        with rec.span("outer"):
            rec.begin("event-driven")  # explicit begin: no stack entry
            with rec.span("inner") as inner:
                # parent is the lexical outer, not the event-driven span
                assert inner.parent == rec.named("outer")[0].id


class TestRingAndQueries:
    def test_ring_capacity_drops_oldest(self):
        rec = SpanRecorder(clock=FakeClock(), capacity=3)
        for i in range(5):
            rec.instant(f"s{i}")
        assert [s.name for s in rec.spans] == ["s2", "s3", "s4"]

    def test_named_and_closed(self):
        rec = SpanRecorder(clock=FakeClock())
        rec.instant("a")
        open_span = rec.begin("b")
        assert [s.name for s in rec.named("a")] == ["a"]
        assert open_span not in list(rec.closed())

    def test_clear_empties_ring_and_stack(self):
        rec = SpanRecorder(clock=FakeClock())
        with rec.span("outer"):
            rec.clear()
        assert rec.spans == []
        with rec.span("fresh") as fresh:
            assert fresh.parent is None


class TestDisabled:
    def test_disabled_recorder_records_nothing(self):
        rec = SpanRecorder(enabled=False)
        span = rec.begin("a")
        rec.end(span)
        rec.interval("b", 0.0, 1.0)
        with rec.span("c"):
            pass
        assert rec.spans == []
        assert isinstance(span, Span)  # dummy is still a usable Span
