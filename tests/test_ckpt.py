"""Unit tests for the checkpoint substrate (stores + manager)."""

from __future__ import annotations

import pytest

from repro.ckpt.manager import CheckpointManager
from repro.ckpt.store import FileCheckpointStore, MemoryCheckpointStore
from repro.errors import CheckpointError


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryCheckpointStore()
    return FileCheckpointStore(tmp_path / "ckpts")


class TestStore:
    def test_save_load_roundtrip(self, store):
        store.save("k1", {"segments_done": 3, "note": "x"})
        assert store.load("k1") == {"segments_done": 3, "note": "x"}

    def test_overwrite_replaces(self, store):
        store.save("k1", {"v": 1})
        store.save("k1", {"v": 2})
        assert store.load("k1") == {"v": 2}

    def test_load_missing_raises(self, store):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            store.load("missing")

    def test_delete_then_load_raises(self, store):
        store.save("k1", {"v": 1})
        store.delete("k1")
        with pytest.raises(CheckpointError):
            store.load("k1")

    def test_delete_missing_is_noop(self, store):
        store.delete("missing")

    def test_keys_sorted(self, store):
        store.save("b", {})
        store.save("a", {})
        assert store.keys() == ["a", "b"]

    def test_contains(self, store):
        assert not store.contains("k")
        store.save("k", {})
        assert store.contains("k")

    def test_empty_key_rejected(self, store):
        with pytest.raises(CheckpointError):
            store.save("", {})

    def test_load_returns_copy(self, store):
        store.save("k", {"v": 1})
        loaded = store.load("k")
        loaded["v"] = 99
        assert store.load("k") == {"v": 1}


class TestMemoryStore:
    def test_write_counter(self):
        store = MemoryCheckpointStore()
        store.save("a", {})
        store.save("a", {})
        assert store.writes == 2


class TestFileStore:
    def test_persists_across_instances(self, tmp_path):
        d = tmp_path / "ckpts"
        FileCheckpointStore(d).save("job@1", {"x": 1})
        assert FileCheckpointStore(d).load("job@1") == {"x": 1}

    def test_unusual_characters_in_keys(self, tmp_path):
        store = FileCheckpointStore(tmp_path)
        store.save("act#job-000001@7.5", {"x": 1})
        assert store.load("act#job-000001@7.5") == {"x": 1}

    def test_unserialisable_state_raises(self, tmp_path):
        store = FileCheckpointStore(tmp_path)
        with pytest.raises(CheckpointError):
            store.save("k", {"fn": lambda: None})

    def test_corrupt_file_raises_checkpoint_error(self, tmp_path):
        store = FileCheckpointStore(tmp_path)
        store.save("k", {"x": 1})
        path = next(tmp_path.glob("*.ckpt.json"))
        path.write_text("{corrupt")
        with pytest.raises(CheckpointError, match="cannot load"):
            store.load("k")


class TestManager:
    def test_record_marks_checkpoint_enabled(self):
        mgr = CheckpointManager()
        assert not mgr.is_checkpoint_enabled("act")
        mgr.record("act", "flag-1", progress=0.25, at=3.0)
        assert mgr.is_checkpoint_enabled("act")
        assert mgr.flag_for("act") == "flag-1"
        assert mgr.progress_of("act") == 0.25

    def test_latest_flag_wins(self):
        mgr = CheckpointManager()
        mgr.record("act", "flag-1")
        mgr.record("act", "flag-2")
        assert mgr.flag_for("act") == "flag-2"

    def test_clear_forgets(self):
        mgr = CheckpointManager()
        mgr.record("act", "flag-1")
        mgr.clear("act")
        assert mgr.flag_for("act") is None
        assert mgr.progress_of("act") == 0.0

    def test_unknown_activity_has_no_flag(self):
        assert CheckpointManager().flag_for("nope") is None

    def test_snapshot_restore_roundtrip(self):
        mgr = CheckpointManager()
        mgr.record("a", "f1", progress=0.5, at=2.0)
        mgr.record("b", "f2")
        restored = CheckpointManager.restore(mgr.snapshot())
        assert restored.flag_for("a") == "f1"
        assert restored.progress_of("a") == 0.5
        assert restored.flag_for("b") == "f2"
