"""Engine checkpointing and restart tests (Section 7's engine fault
tolerance): the engine saves the instance tree after every task termination
and resumes navigation from the saved state."""

from __future__ import annotations

import pytest

from tests.helpers import single_task_workflow
from repro.core import FailurePolicy
from repro.engine import (
    EngineCheckpointer,
    NodeStatus,
    WorkflowEngine,
    WorkflowStatus,
    load_checkpoint,
)
from repro.engine.checkpoint import EngineCheckpointer as Checkpointer
from repro.errors import CheckpointError
from repro.grid import (
    RELIABLE,
    CrashingTask,
    FixedDurationTask,
    GridConfig,
    SimulatedGrid,
)
from repro.wpdl import WorkflowBuilder


def chain_workflow():
    return (
        WorkflowBuilder("chain")
        .program("step", hosts=["h1"])
        .activity("a", implement="step", policy=FailurePolicy.retrying(3))
        .activity("b", implement="step")
        .activity("c", implement="step")
        .sequence("a", "b", "c")
        .build()
    )


def fresh_grid():
    grid = SimulatedGrid(config=GridConfig(heartbeats=False))
    grid.add_host(RELIABLE("h1"))
    grid.install("h1", "step", FixedDurationTask(10.0, result="ok"))
    return grid


class TestCheckpointCadence:
    def test_saved_after_every_task_termination(self, tmp_path):
        grid = fresh_grid()
        ckpt = EngineCheckpointer(tmp_path / "engine.ckpt")
        engine = WorkflowEngine(
            chain_workflow(), grid, reactor=grid.reactor, checkpointer=ckpt
        )
        result = engine.run(timeout=1e6)
        assert result.succeeded
        assert ckpt.saves == 3  # one per task termination
        assert ckpt.exists()

    def test_checkpoint_contains_progress(self, tmp_path):
        grid = fresh_grid()
        path = tmp_path / "engine.ckpt"
        engine = WorkflowEngine(
            chain_workflow(),
            grid,
            reactor=grid.reactor,
            checkpointer=EngineCheckpointer(path),
        )
        engine.start()
        # Stop mid-workflow: run only until task "a" finished (t=10).
        grid.kernel.run_until(12.0)
        spec, instance = load_checkpoint(path)
        assert spec.name == "chain"
        assert instance.node("a").status is NodeStatus.DONE
        # "b" was RUNNING at save time; the loader resets it for re-launch.
        assert instance.node("b").status is NodeStatus.PENDING
        assert instance.node("c").status is NodeStatus.PENDING


class TestResume:
    def test_resume_completes_remaining_work_only(self, tmp_path):
        path = tmp_path / "engine.ckpt"
        grid1 = fresh_grid()
        engine1 = WorkflowEngine(
            chain_workflow(),
            grid1,
            reactor=grid1.reactor,
            checkpointer=EngineCheckpointer(path),
        )
        engine1.start()
        grid1.kernel.run_until(12.0)  # a done, b in flight; engine "dies"

        grid2 = fresh_grid()
        engine2 = WorkflowEngine.resume(
            str(path), grid2, reactor=grid2.reactor
        )
        result = engine2.run(timeout=1e6)
        assert result.succeeded
        # Only b and c run in the new engine's timeline: 20 virtual seconds.
        assert result.completion_time == pytest.approx(20.0)
        assert result.variables["a"] == "ok"  # carried over in variables

    def test_resume_preserves_retry_budget(self, tmp_path):
        path = tmp_path / "engine.ckpt"
        wf = single_task_workflow(policy=FailurePolicy.retrying(3))

        grid1 = SimulatedGrid(config=GridConfig(heartbeats=False))
        grid1.add_host(RELIABLE("h1"))
        grid1.install(
            "h1", "task", CrashingTask(duration=30.0, crash_at=5.0, crashes=None)
        )
        engine1 = WorkflowEngine(
            wf, grid1, reactor=grid1.reactor,
            checkpointer=EngineCheckpointer(path),
        )
        engine1.start()
        grid1.kernel.run_until(7.0)  # first try crashed (budget: 1 used)...
        engine1._checkpoint()  # ...engine dies right after recording it

        grid2 = SimulatedGrid(config=GridConfig(heartbeats=False))
        grid2.add_host(RELIABLE("h1"))
        grid2.install(
            "h1", "task", CrashingTask(duration=30.0, crash_at=5.0, crashes=None)
        )
        engine2 = WorkflowEngine.resume(str(path), grid2, reactor=grid2.reactor)
        result = engine2.run(timeout=1e6)
        assert result.status is WorkflowStatus.FAILED
        # Fresh grid counts attempts from 1 again, but the *budget* carries:
        # only 3 total tries ever happen (1 before + 2 after the restart).
        assert result.tries["task"] == 3

    def test_resume_after_success_is_terminal_noop(self, tmp_path):
        path = tmp_path / "engine.ckpt"
        grid1 = fresh_grid()
        WorkflowEngine(
            chain_workflow(), grid1, reactor=grid1.reactor,
            checkpointer=EngineCheckpointer(path),
        ).run(timeout=1e6)

        grid2 = fresh_grid()
        engine2 = WorkflowEngine.resume(str(path), grid2, reactor=grid2.reactor)
        result = engine2.run(timeout=1e6)
        assert result.succeeded
        assert result.completion_time == pytest.approx(0.0)  # nothing re-ran
        assert grid2.gram.submitted_count == 0


class TestCheckpointFileFormat:
    def test_load_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "missing.ckpt")

    def test_load_corrupt_xml(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_text("<EngineCheckpoint><unclosed>")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(path)

    def test_load_wrong_root(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_text("<NotACheckpoint/>")
        with pytest.raises(CheckpointError, match="not an engine checkpoint"):
            load_checkpoint(path)

    def test_load_incomplete_structure(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_text("<EngineCheckpoint><Specification/></EngineCheckpoint>")
        with pytest.raises(CheckpointError, match="incomplete"):
            load_checkpoint(path)

    def test_remove_is_idempotent(self, tmp_path):
        ckpt = Checkpointer(tmp_path / "x.ckpt")
        ckpt.remove()
        ckpt.remove()
        assert not ckpt.exists()
