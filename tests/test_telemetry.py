"""Live telemetry plane tests: causal trace propagation, the flight
recorder and its post-mortem reconstruction, and the HTTP scrape/status
server — plus the exporter round-trip of many concurrent instances'
labelled series.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from tests.helpers import single_task_workflow
from repro.core import FailurePolicy
from repro.engine import EngineHost, WorkflowEngine
from repro.events import EventBus
from repro.grid import (
    RELIABLE,
    CheckpointingTask,
    CrashingTask,
    FixedDurationTask,
    inject_crash,
)
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    RunObserver,
    TelemetryServer,
    TraceContext,
    Tracer,
    WorkflowStatusTracker,
    build_timelines,
    chrome_trace,
    jsonl_lines,
    load_recording,
    prometheus_text,
    render_report,
    scrape_bus,
    scrape_kernel,
    stamp,
)


def crashy_run(bus: EventBus, *, crashes: int = 2, tracer: Tracer | None = None):
    """A single-task run that crashes *crashes* times then succeeds,
    publishing on *bus*; returns the engine's result."""
    from repro.grid import GridConfig, SimulatedGrid

    grid = SimulatedGrid(config=GridConfig(heartbeats=False))
    grid.add_host(RELIABLE("h1"))
    grid.install(
        "h1", "task", CrashingTask(duration=30.0, crash_at=5.0, crashes=crashes)
    )
    wf = single_task_workflow(policy=FailurePolicy.retrying(8, interval=2.0))
    engine = WorkflowEngine(
        wf, grid, reactor=grid.reactor, bus=bus, tracer=tracer
    )
    return engine.run(timeout=1e6)


def collect_ids(events):
    """topic → list of (trace_id, span_id, parent_id) triples, duck-typed
    over dict and AttemptOutcome payloads."""
    triples = []
    for topic, payload in events:
        if isinstance(payload, dict):
            ids = (
                payload.get("trace_id", ""),
                payload.get("span_id", ""),
                payload.get("parent_id", ""),
            )
        else:
            ids = (
                getattr(payload, "trace_id", ""),
                getattr(payload, "span_id", ""),
                getattr(payload, "parent_id", ""),
            )
        triples.append((topic, *ids))
    return triples


class TestTracer:
    def test_ids_are_deterministic_counters(self):
        tracer = Tracer()
        root = tracer.root("wf-1")
        child = tracer.child(root)
        grandchild = tracer.child(child)
        assert root.trace_id == "wf-1#1"
        assert (root.span_id, child.span_id, grandchild.span_id) == (
            "s1",
            "s2",
            "s3",
        )
        assert root.parent_id is None
        assert child.parent_id == "s1"
        assert grandchild.parent_id == "s2"
        assert child.trace_id == grandchild.trace_id == root.trace_id
        assert tracer.spans_allocated == 3
        assert tracer.traces_opened == 1

    def test_two_tracers_produce_identical_sequences(self):
        a, b = Tracer(), Tracer()
        seq_a = [a.child(a.root("x")) for _ in range(5)]
        seq_b = [b.child(b.root("x")) for _ in range(5)]
        assert seq_a == seq_b

    def test_stamp_writes_ids_and_noop_when_off(self):
        detail: dict = {"k": 1}
        assert stamp(detail, None) == {"k": 1}
        ctx = TraceContext(trace_id="t#1", span_id="s2", parent_id="s1")
        stamped = stamp({"k": 1}, ctx)
        assert stamped == {
            "k": 1,
            "trace_id": "t#1",
            "span_id": "s2",
            "parent_id": "s1",
        }
        root = TraceContext(trace_id="t#1", span_id="s1")
        assert "parent_id" not in stamp({}, root)


class TestCausalPropagation:
    def test_untraced_run_stamps_nothing(self):
        bus = EventBus()
        events = []
        bus.subscribe("*", lambda t, p: events.append((t, p)))
        result = crashy_run(bus, tracer=None)
        assert result.succeeded
        for _topic, trace_id, span_id, _parent in collect_ids(events):
            assert trace_id == "" and span_id == ""

    def test_retry_chain_links_attempts_to_decisions(self):
        bus = EventBus()
        events = []
        bus.subscribe("*", lambda t, p: events.append((t, p)))
        result = crashy_run(bus, crashes=2, tracer=Tracer())
        assert result.succeeded
        ids = collect_ids(events)
        trace_ids = {t for _, t, _, _ in ids if t}
        assert len(trace_ids) == 1  # one run, one causal tree

        by_topic: dict[str, list[tuple[str, str]]] = {}
        for topic, _trace, span, parent in ids:
            if span:
                by_topic.setdefault(topic, []).append((span, parent))

        launches = by_topic["engine.node_launched"]
        attempts = by_topic["task.active"]
        retries = by_topic["recovery.retry"]
        assert len(attempts) == 3 and len(retries) == 2
        # First attempt descends from the node launch.
        assert attempts[0][1] == launches[0][0]
        # Each retry decision descends from the attempt that failed, and
        # each subsequent attempt descends from the decision.
        for i, (retry_span, retry_parent) in enumerate(retries):
            assert retry_parent == attempts[i][0]
            assert attempts[i + 1][1] == retry_span
        # Terminal attempt outcomes carry the attempt's own span.
        attempt_spans = {span for span, _parent in attempts}
        for span, _parent in by_topic["task.failed"]:
            assert span in attempt_spans
        # The resolution closes back to the launch.
        resolved = by_topic["recovery.resolved"][0]
        assert resolved[1] == launches[0][0]

    def test_traced_runs_are_repeatable(self):
        def run_ids():
            bus = EventBus()
            events = []
            bus.subscribe("*", lambda t, p: events.append((t, p)))
            crashy_run(bus, tracer=Tracer())
            return collect_ids(events)

        assert run_ids() == run_ids()

    def test_checkpoint_restart_carries_flag_source_span(self):
        from repro.grid import GridConfig, SimulatedGrid

        grid = SimulatedGrid(config=GridConfig(heartbeats=False))
        grid.add_host(RELIABLE("h1"))
        grid.install(
            "h1",
            "task",
            CheckpointingTask(duration=30.0, checkpoints=6, overhead=0.5),
        )
        inject_crash(grid.kernel, grid.host("h1"), at=12.0, duration=0.0)
        bus = EventBus()
        events = []
        bus.subscribe("*", lambda t, p: events.append((t, p)))
        wf = single_task_workflow(policy=FailurePolicy.retrying(None))
        engine = WorkflowEngine(
            wf, grid, reactor=grid.reactor, bus=bus, tracer=Tracer()
        )
        assert engine.run(timeout=1e6).succeeded
        restarts = [
            p for t, p in events if t == "recovery.checkpoint_restart"
        ]
        assert restarts, "expected a checkpoint restart"
        first_attempt_span = next(
            getattr(p, "span_id", "")
            for t, p in events
            if t.startswith("task.active")
        )
        assert restarts[0]["flag_source"] == first_attempt_span
        assert restarts[0]["span_id"]  # the restart is itself a hop


class TestFlightRecorder:
    def test_ring_bounds_and_stats(self):
        bus = EventBus()
        recorder = FlightRecorder(bus, capacity=5)
        for i in range(8):
            bus.publish("t.x", {"i": i})
        stats = recorder.stats()
        assert stats["recorded"] == 8
        assert stats["retained"] == 5
        assert stats["overwritten"] == 3
        assert [e["i"] for e in recorder.entries] == [3, 4, 5, 6, 7]
        recorder.detach()
        bus.publish("t.x", {"i": 99})
        assert recorder.stats()["recorded"] == 8

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_spill_and_dump_round_trip(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        bus = EventBus()
        with FlightRecorder(bus, spill_path=str(spill)) as recorder:
            crashy_run(bus, tracer=Tracer())
            dump = tmp_path / "dump.jsonl"
            recorder.dump(str(dump))
        spilled = load_recording(str(spill))
        dumped = load_recording(str(dump))
        assert spilled == dumped
        assert spilled, "journal must not be empty"
        assert not (tmp_path / "dump.jsonl.tmp").exists()
        topics = {e["topic"] for e in spilled}
        assert "engine.workflow_finished" in topics
        assert any(t.startswith("task.active") for t in topics)

    def test_load_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            json.dumps({"journal_version": 1})
            + "\n"
            + json.dumps({"seq": 0, "topic": "t.x"})
            + "\n"
            + '{"seq": 1, "topic": "t.y", "tru'
        )
        entries = load_recording(str(path))
        assert [e["seq"] for e in entries] == [0]

    def test_load_rejects_future_version(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"journal_version": 999}) + "\n")
        with pytest.raises(ValueError):
            load_recording(str(path))

    def test_unserialisable_payload_degrades_not_crashes(self):
        bus = EventBus()
        recorder = FlightRecorder(bus)
        bus.publish("t.weird", object())
        (entry,) = recorder.entries
        assert entry["topic"] == "t.weird"
        assert "payload" in entry

    def test_spill_torn_mid_record_salvages_complete_prefix(self, tmp_path):
        """A crash mid-write leaves the spill's final record torn;
        loading must salvage every complete record before it."""
        spill = tmp_path / "spill.jsonl"
        bus = EventBus()
        with FlightRecorder(bus, spill_path=str(spill)):
            crashy_run(bus, tracer=Tracer())
        intact = load_recording(str(spill))
        assert len(intact) > 10

        raw = spill.read_bytes()
        # Cut inside the last record: past its start, short of its '\n'.
        last_start = raw.rstrip(b"\n").rfind(b"\n") + 1
        torn = raw[: last_start + (len(raw.rstrip(b"\n")) - last_start) // 2]
        spill.write_bytes(torn)
        salvaged = load_recording(str(spill))
        assert salvaged == intact[:-1]


class TestPostmortem:
    def run_and_build(self):
        bus = EventBus()
        recorder = FlightRecorder(bus)
        crashy_run(bus, crashes=2, tracer=Tracer())
        return build_timelines(recorder.entries)

    def test_attempt_ledger_and_causal_arrows(self):
        timelines = self.run_and_build()
        (tl,) = timelines.values()
        assert tl.status == "done"
        assert tl.nodes == {"task": "done"}
        assert tl.verdict_counts() == {"failed": 2, "done": 1}
        first, second, third = tl.attempts
        assert first.caused_by.startswith("launch:task")
        assert second.caused_by.startswith("recovery.retry")
        assert third.caused_by.startswith("recovery.retry")
        assert first.outcome == "failed" and first.reason
        assert third.outcome == "done"
        retries = [
            d for d in tl.decisions if d.topic == "recovery.retry"
        ]
        assert [r.caused_by.split("[")[0] for r in retries] == [
            "attempt:" + first.job,
            "attempt:" + second.job,
        ]

    def test_render_report_mentions_chain(self):
        timelines = self.run_and_build()
        text = render_report(timelines)
        assert "recovery.retry" in text
        assert "⇐" in text
        assert "failed(" in text

    def test_render_report_unknown_workflow(self):
        timelines = self.run_and_build()
        assert "no workflow" in render_report(timelines, workflow_id="wf-404")

    def test_untraced_recording_builds_without_arrows(self):
        bus = EventBus()
        recorder = FlightRecorder(bus)
        crashy_run(bus, tracer=None)
        (tl,) = build_timelines(recorder.entries).values()
        assert len(tl.attempts) == 3
        assert all(a.caused_by == "" for a in tl.attempts)


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode()


class TestTelemetryServer:
    def test_endpoints_reflect_live_run(self):
        bus = EventBus()
        observer = RunObserver(bus)
        tracker = WorkflowStatusTracker(bus)
        server = TelemetryServer(registry=observer.metrics, tracker=tracker)
        port = server.start()
        try:
            crashy_run(bus, tracer=Tracer())
            status, text = _get(f"http://127.0.0.1:{port}/metrics")
            assert status == 200
            assert "# TYPE task_attempts_total counter" in text
            status, text = _get(f"http://127.0.0.1:{port}/healthz")
            assert status == 200 and json.loads(text)["status"] == "ok"
            status, text = _get(f"http://127.0.0.1:{port}/workflows")
            workflows = json.loads(text)
            assert [w["phase"] for w in workflows] == ["done"]
            wfid = workflows[0]["workflow_id"] or "unscoped"
            if workflows[0]["workflow_id"]:
                status, text = _get(
                    f"http://127.0.0.1:{port}/workflows/{wfid}"
                )
                assert status == 200
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"http://127.0.0.1:{port}/workflows/wf-404")
            assert err.value.code == 404
        finally:
            server.stop()

    def test_head_matches_get_with_empty_body(self):
        bus = EventBus()
        tracker = WorkflowStatusTracker(bus)
        registry = MetricsRegistry()
        registry.counter("c").inc()
        server = TelemetryServer(registry=registry, tracker=tracker)
        port = server.start()
        try:
            for path in ("/metrics", "/healthz", "/health", "/alerts",
                         "/timeseries", "/workflows", "/"):
                _status, get_body = _get(f"http://127.0.0.1:{port}{path}")
                request = urllib.request.Request(
                    f"http://127.0.0.1:{port}{path}", method="HEAD"
                )
                with urllib.request.urlopen(request, timeout=10) as response:
                    assert response.status == 200, path
                    assert response.read() == b"", path
                    assert int(response.headers["Content-Length"]) == len(
                        get_body.encode()
                    ), path
        finally:
            server.stop()

    def test_write_methods_are_405_json_with_allow(self):
        server = TelemetryServer(registry=MetricsRegistry())
        port = server.start()
        try:
            for method in ("POST", "PUT", "DELETE"):
                request = urllib.request.Request(
                    f"http://127.0.0.1:{port}/metrics",
                    data=b"{}",
                    method=method,
                )
                with pytest.raises(urllib.error.HTTPError) as err:
                    urllib.request.urlopen(request, timeout=10)
                assert err.value.code == 405
                assert err.value.headers["Allow"] == "GET, HEAD"
                assert err.value.headers["Content-Type"] == "application/json"
                body = json.loads(err.value.read().decode())
                assert body["allow"] == ["GET", "HEAD"]
        finally:
            server.stop()

    def test_unknown_route_is_json_404(self):
        server = TelemetryServer(registry=MetricsRegistry())
        port = server.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"http://127.0.0.1:{port}/nope")
            assert err.value.code == 404
            assert err.value.headers["Content-Type"] == "application/json"
            assert "no route" in json.loads(err.value.read().decode())["error"]
        finally:
            server.stop()

    def test_timeseries_routes(self):
        from repro.obs import TimeSeriesStore

        store = TimeSeriesStore(step=1.0)
        store.observe("queue_depth", 0.0, 3.0, host="h1")
        store.observe("queue_depth", 1.0, 5.0, host="h1")
        server = TelemetryServer(store=store)
        port = server.start()
        try:
            _status, text = _get(f"http://127.0.0.1:{port}/timeseries")
            assert json.loads(text)["series"] == ["queue_depth"]
            _status, text = _get(
                f"http://127.0.0.1:{port}/timeseries/queue_depth"
            )
            payload = json.loads(text)
            (ring,) = payload["series"]
            assert ring["labels"] == {"host": "h1"}
            assert [p["last"] for p in ring["points"]] == [3.0, 5.0]
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"http://127.0.0.1:{port}/timeseries/absent")
            assert err.value.code == 404
            body = json.loads(err.value.read().decode())
            assert body["known"] == ["queue_depth"]
        finally:
            server.stop()

    def test_workflow_churn_while_scraping(self):
        """Scrape /workflows from another thread while instances are
        being admitted — every response must be complete, valid JSON."""
        import threading

        bus = EventBus()
        tracker = WorkflowStatusTracker(bus)
        server = TelemetryServer(tracker=tracker)
        port = server.start()
        failures: list[str] = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                try:
                    _status, text = _get(f"http://127.0.0.1:{port}/workflows")
                    for entry in json.loads(text):
                        entry["workflow_id"], entry["attempts"]["total"]
                except Exception as exc:  # noqa: BLE001 - collected below
                    failures.append(repr(exc))
                    return

        scraper = threading.Thread(target=hammer, daemon=True)
        try:
            scraper.start()
            for i in range(300):
                wfid = f"wf-{i}"
                bus.publish(
                    "engine.workflow_admitted",
                    {"workflow": "w", "workflow_id": wfid},
                )
                bus.publish(
                    "engine.node_launched",
                    {"workflow": "w", "workflow_id": wfid, "node": "task"},
                )
            stop.set()
            scraper.join(timeout=10)
            assert not failures, failures
            assert len(tracker.snapshot()) == 300
        finally:
            stop.set()
            server.stop()

    def test_tracker_live_phases(self):
        bus = EventBus()
        tracker = WorkflowStatusTracker(bus)
        bus.publish(
            "engine.node_launched",
            {"workflow": "w", "workflow_id": "wf-1", "node": "task", "at": 0.0},
        )
        (entry,) = tracker.snapshot()
        assert entry["phase"] == "running"
        assert entry["running_nodes"] == ["task"]
        bus.publish(
            "engine.node_completed",
            {
                "workflow": "w",
                "workflow_id": "wf-1",
                "node": "task",
                "status": "done",
                "at": 3.0,
            },
        )
        bus.publish(
            "engine.workflow_finished",
            {"workflow": "w", "workflow_id": "wf-1", "status": "done", "at": 3.0},
        )
        (entry,) = tracker.snapshot()
        assert entry["phase"] == "done"
        assert entry["running_nodes"] == []
        assert entry["finished_at"] == 3.0


class TestManyInstancesExportRoundTrip:
    N = 100

    def test_labelled_series_survive_both_exporters(self):
        from repro.grid import GridConfig, SimulatedGrid

        grid = SimulatedGrid(config=GridConfig(heartbeats=False))
        grid.add_host(RELIABLE("h1"))
        grid.install("h1", "task", FixedDurationTask(10.0))
        bus = EventBus()
        observer = RunObserver(bus)
        host = EngineHost(
            grid, reactor=grid.reactor, bus=bus, tracer=Tracer()
        )
        wf = single_task_workflow()
        ids = host.submit_many(wf, count=self.N)
        results = host.wait_all(timeout=1e7)
        assert len(results) == self.N
        assert all(r.succeeded for r in results.values())

        # Prometheus text: every instance's workflow_id label present
        # exactly once on the per-run counter, no drops or collisions.
        text = prometheus_text(observer.metrics)
        for wfid in ids:
            assert (
                text.count(
                    f'engine_workflow_runs_total{{status="done",'
                    f'workflow_id="{wfid}"}} 1.0'
                )
                == 1
            )

        # JSON-lines: the trailing metrics snapshot round-trips the same
        # label space.
        lines = list(jsonl_lines(metrics=observer.metrics))
        snapshot = json.loads(lines[-1])
        assert snapshot["kind"] == "metrics"
        runs = snapshot["families"]["engine_workflow_runs_total"]
        label_values = {
            series["labels"]["workflow_id"] for series in runs["series"]
        }
        assert label_values == set(ids)


class TestScrapers:
    def test_bus_and_kernel_scrapes(self):
        bus = EventBus()
        crashy_run(bus)
        registry = MetricsRegistry()
        scrape_bus(registry, bus)
        assert registry.value("bus_publishes") == bus.stats()["publishes"]
        assert registry.value("bus_publishes") > 0
        hit_rate = registry.value("bus_route_cache_hit_rate")
        assert 0.0 <= hit_rate <= 1.0

        from repro.grid import SimKernel

        kernel = SimKernel()
        kernel.schedule(1.0, lambda: None)
        kernel.run()
        scrape_kernel(registry, kernel)
        assert registry.value("sim_events_processed") == 1.0

    def test_bus_stats_count_publishes(self):
        bus = EventBus()
        before = bus.stats()["publishes"]
        bus.publish("a.b", {})
        bus.publish("a.c", {})
        assert bus.stats()["publishes"] == before + 2


class TestChromeTraceFlows:
    def test_flow_events_pair_decision_to_attempt(self):
        bus = EventBus()
        observer = RunObserver(bus)
        crashy_run(bus, crashes=2, tracer=Tracer())
        payload = chrome_trace(observer.spans)
        flows = [
            e for e in payload["traceEvents"] if e.get("ph") in ("s", "f")
        ]
        assert flows, "traced spans must yield causal flow events"
        starts = [e for e in flows if e["ph"] == "s"]
        finishes = [e for e in flows if e["ph"] == "f"]
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}
        for finish in finishes:
            start = next(e for e in starts if e["id"] == finish["id"])
            assert finish["ts"] >= start["ts"]

    def test_untraced_spans_yield_no_flows(self):
        bus = EventBus()
        observer = RunObserver(bus)
        crashy_run(bus, tracer=None)
        payload = chrome_trace(observer.spans)
        assert not any(
            e.get("ph") in ("s", "f") for e in payload["traceEvents"]
        )
