"""Tests for structured execution traces (EngineTrace)."""

from __future__ import annotations

import pytest

from tests.helpers import fig4_workflow, two_reliable_hosts
from repro.engine import WorkflowEngine
from repro.engine.engine import (
    ENGINE_NODE_CANCELLED,
    ENGINE_NODE_COMPLETED,
    ENGINE_NODE_LAUNCHED,
    ENGINE_WORKFLOW_FINISHED,
)
from repro.engine.trace import EngineTrace
from repro.grid import CrashingTask, FixedDurationTask
from repro.wpdl import JoinMode, WorkflowBuilder


@pytest.fixture
def traced_fig4(quiet_grid):
    two_reliable_hosts(quiet_grid)
    quiet_grid.install(
        "u1", "fast", CrashingTask(duration=30.0, crash_at=10.0, crashes=None)
    )
    quiet_grid.install("r1", "slow", FixedDurationTask(150.0))
    engine = WorkflowEngine(fig4_workflow(), quiet_grid, reactor=quiet_grid.reactor)
    trace = EngineTrace.attach(engine)
    engine.run(timeout=1e7)
    return trace


class TestRecording:
    def test_launch_and_completion_events_per_node(self, traced_fig4):
        assert traced_fig4.count(ENGINE_NODE_LAUNCHED) == 3  # FU, SR, Join
        assert traced_fig4.count(ENGINE_NODE_COMPLETED) == 3
        assert traced_fig4.count(ENGINE_WORKFLOW_FINISHED) == 1

    def test_detector_attempts_recorded(self, traced_fig4):
        attempts = traced_fig4.attempts("FU")
        assert len(attempts) == 2  # two crash tries
        assert all(e.topic == "task.failed" for e in attempts)
        assert attempts[0].detail["reason"] == "done-without-taskend"

    def test_for_node_merges_engine_and_detector_views(self, traced_fig4):
        events = traced_fig4.for_node("FU")
        topics = {e.topic for e in events}
        assert ENGINE_NODE_LAUNCHED in topics
        assert ENGINE_NODE_COMPLETED in topics
        assert "task.failed" in topics

    def test_completed_event_carries_status_and_tries(self, traced_fig4):
        completed = [
            e
            for e in traced_fig4.events
            if e.topic == ENGINE_NODE_COMPLETED and e.detail["node"] == "FU"
        ]
        assert completed[0].detail["status"] == "failed"
        assert completed[0].detail["tries"] == 2

    def test_render_is_time_ordered(self, traced_fig4):
        lines = traced_fig4.render().splitlines()
        times = [float(line.split()[0]) for line in lines]
        assert times == sorted(times)

    def test_detach_stops_recording(self, quiet_grid):
        quiet_grid.add_host(
            __import__("repro.grid", fromlist=["RELIABLE"]).RELIABLE("h1")
        )
        quiet_grid.install("h1", "t", FixedDurationTask(5.0))
        wf = (
            WorkflowBuilder("w")
            .program("t", hosts=["h1"])
            .activity("a", implement="t")
            .build()
        )
        engine = WorkflowEngine(wf, quiet_grid, reactor=quiet_grid.reactor)
        trace = EngineTrace.attach(engine)
        trace.detach()
        engine.run()
        assert trace.events == []


class TestAcrossReset:
    """One trace observing an engine-reuse loop (reset between runs)."""

    def _engine(self, quiet_grid):
        quiet_grid.add_host(
            __import__("repro.grid", fromlist=["RELIABLE"]).RELIABLE("h1")
        )
        quiet_grid.install("h1", "t", FixedDurationTask(5.0))
        wf = (
            WorkflowBuilder("w")
            .program("t", hosts=["h1"])
            .activity("a", implement="t")
            .build()
        )
        return WorkflowEngine(wf, quiet_grid, reactor=quiet_grid.reactor)

    def test_trace_survives_engine_reset(self, quiet_grid):
        engine = self._engine(quiet_grid)
        trace = EngineTrace.attach(engine)
        engine.run()
        first = trace.count(ENGINE_WORKFLOW_FINISHED)
        quiet_grid.reset(seed=1)
        engine.reset()
        engine.run()
        assert first == 1
        assert trace.count(ENGINE_WORKFLOW_FINISHED) == 2

    def test_reattach_after_reset_does_not_double_record(self, quiet_grid):
        engine = self._engine(quiet_grid)
        trace = EngineTrace.attach(engine)
        engine.run()
        quiet_grid.reset(seed=1)
        engine.reset()
        # Re-attaching to the same bus must be a no-op, not a second
        # subscription recording every event twice.
        trace.attach_bus(engine.runtime.bus)
        engine.run()
        assert trace.count(ENGINE_NODE_LAUNCHED) == 2
        assert trace.count(ENGINE_WORKFLOW_FINISHED) == 2

    def test_detach_is_idempotent(self, quiet_grid):
        engine = self._engine(quiet_grid)
        trace = EngineTrace.attach(engine)
        trace.detach()
        trace.detach()
        engine.run()
        assert trace.events == []
        assert not trace.attached

    def test_detach_then_reattach_resumes_recording(self, quiet_grid):
        engine = self._engine(quiet_grid)
        trace = EngineTrace.attach(engine)
        trace.detach()
        trace.attach_bus(engine.runtime.bus)
        engine.run()
        assert trace.count(ENGINE_WORKFLOW_FINISHED) == 1


class TestSpans:
    def test_nested_spans_recorded(self, traced_fig4):
        spans = traced_fig4.spans
        workflow = [s for s in spans if s.name == "workflow.run"]
        nodes = {s.labels["node"]: s for s in spans if s.name == "node.run"}
        attempts = [s for s in spans if s.name == "task.attempt"]
        assert len(workflow) == 1 and not workflow[0].open
        assert set(nodes) == {"FU", "SR", "Join"}
        assert all(s.parent == workflow[0].id for s in nodes.values())
        fu_attempts = [s for s in attempts if s.labels["activity"] == "FU"]
        assert len(fu_attempts) == 2
        assert all(s.parent == nodes["FU"].id for s in fu_attempts)
        assert all(s.labels["outcome"] == "failed" for s in fu_attempts)

    def test_metrics_recorded(self, traced_fig4):
        metrics = traced_fig4.metrics
        assert (
            metrics.value("task_attempts_total", activity="FU", outcome="failed")
            == 2
        )
        assert metrics.value("engine_workflow_runs_total", status="done") == 1
        hist = metrics.get_histogram("task_attempt_sim_seconds", activity="SR")
        assert hist is not None and hist.count == 1

    def test_recovery_events_recorded(self, traced_fig4):
        # FU crashes twice; the retry strategy schedules one resubmission
        # before the slot exhausts.
        assert traced_fig4.count("recovery.retry") == 1
        assert traced_fig4.count("recovery.exhausted") == 1
        resolved = [
            e for e in traced_fig4.events if e.topic == "recovery.resolved"
        ]
        states = {e.detail["activity"]: e.detail["state"] for e in resolved}
        assert states["FU"] == "failed"
        assert states["SR"] == "done"


class TestCancelledEvents:
    def test_or_join_race_emits_cancelled_event(self, quiet_grid):
        two_reliable_hosts(quiet_grid)
        quiet_grid.install("u1", "fast", FixedDurationTask(10.0))
        quiet_grid.install("r1", "slow", FixedDurationTask(100.0))
        wf = (
            WorkflowBuilder("race")
            .program("fast", hosts=["u1"])
            .program("slow", hosts=["r1"])
            .dummy("split")
            .activity("quick", implement="fast")
            .activity("laggard", implement="slow")
            .dummy("join", join=JoinMode.OR)
            .redundant("split", "join", "quick", "laggard")
            .build()
        )
        engine = WorkflowEngine(wf, quiet_grid, reactor=quiet_grid.reactor)
        trace = EngineTrace.attach(engine)
        engine.run()
        cancelled = [
            e for e in trace.events if e.topic == ENGINE_NODE_CANCELLED
        ]
        assert [e.detail["node"] for e in cancelled] == ["laggard"]
