"""Unit tests for the WPDL serializer (round-trip with the parser)."""

from __future__ import annotations

import pytest

from repro.core.policy import FailurePolicy, ResourceSelection
from repro.errors import SpecificationError
from repro.wpdl import (
    JoinMode,
    Option,
    Parameter,
    WorkflowBuilder,
    parse_wpdl,
    serialize_wpdl,
)
from repro.wpdl.serializer import workflow_to_element


def rich_workflow():
    """A workflow exercising every serialisable construct."""
    body = (
        WorkflowBuilder("refine_body")
        .program("solver", hosts=["s1"])
        .activity("solve", implement="solver", outputs=["residual"])
        .build()
    )
    return (
        WorkflowBuilder("rich")
        .variable("threshold", 0.5)
        .variable("label", "x")
        .variable("limit", 10)
        .variable("flag", True)
        .variable("nothing", None)
        .program(
            "fast",
            options=[
                Option(hostname="u1", executable_dir="/opt/bin", executable="fast2"),
                Option(hostname="u2", service="batch"),
            ],
        )
        .program("slow", hosts=["r1"])
        .activity(
            "FU",
            implement="fast",
            policy=FailurePolicy(
                max_tries=None,
                interval=2.5,
                resource_selection=ResourceSelection.ROTATE,
                restart_from_checkpoint=False,
                retry_on_exception=True,
            ),
            inputs=[Parameter("n", value=7), Parameter("prev", ref="seed")],
            outputs=["result"],
            description="fast but unreliable",
        )
        .activity("SR", implement="slow", policy=FailurePolicy.replica())
        .dummy("DJ", join=JoinMode.OR)
        .loop("refine", body, "residual > threshold", max_iterations=7)
        .variable("seed", 1)
        .transition("FU", "DJ")
        .on_exception("FU", "disk_*", "SR")
        .on_failure("FU", "SR")
        .transition("SR", "DJ")
        .transition("DJ", "refine")
        .when("DJ", "limit > 5", "refine")
        .build(validate_graph=False)  # replica with wildcard host count etc.
    )


class TestRoundTrip:
    def test_rich_workflow_roundtrips_exactly(self):
        wf = rich_workflow()
        text = serialize_wpdl(wf)
        assert parse_wpdl(text, validate_graph=False) == wf

    def test_minimal_workflow_roundtrips(self):
        wf = WorkflowBuilder("tiny").dummy("only").build()
        assert parse_wpdl(serialize_wpdl(wf)) == wf

    def test_nested_loop_roundtrips(self):
        inner = WorkflowBuilder("inner").dummy("t").build()
        middle = (
            WorkflowBuilder("middle").loop("il", inner, "x > 1").build()
        )
        outer = WorkflowBuilder("outer").loop("ol", middle, "y > 1").build()
        assert parse_wpdl(serialize_wpdl(outer)) == outer


class TestOutputShape:
    def test_default_attributes_omitted(self):
        wf = WorkflowBuilder("w").dummy("t").build()
        text = serialize_wpdl(wf)
        assert "max_tries" not in text
        assert "interval" not in text
        assert "join=" not in text
        assert "policy=" not in text

    def test_unlimited_tries_serialised_as_keyword(self):
        wf = (
            WorkflowBuilder("w")
            .program("p", hosts=["h"])
            .activity("t", implement="p", policy=FailurePolicy.retrying(None))
            .build()
        )
        assert 'max_tries="unlimited"' in serialize_wpdl(wf)

    def test_pretty_and_compact_modes(self):
        wf = WorkflowBuilder("w").dummy("t").build()
        pretty = serialize_wpdl(wf, pretty=True)
        compact = serialize_wpdl(wf, pretty=False)
        assert "\n" in pretty
        assert parse_wpdl(compact) == wf

    def test_element_tag_override(self):
        wf = WorkflowBuilder("w").dummy("t").build()
        elem = workflow_to_element(wf, tag="Body")
        assert elem.tag == "Body"

    def test_unserialisable_variable_rejected(self):
        wf = WorkflowBuilder("w").dummy("t").variable("bad", object()).build()
        with pytest.raises(SpecificationError, match="cannot serialise"):
            serialize_wpdl(wf)


class TestCombinedPolicyRoundTrip:
    """Combined-technique policies survive serialize → parse unchanged —
    the strategy layer's acceptance path (policies reach the engine
    exactly as a WPDL file declares them)."""

    def combined_workflow(self):
        from repro.core.policy import (
            CheckpointConfig,
            ReplicationConfig,
            ReplicationMode,
            RetryConfig,
        )

        replication_checkpointing = FailurePolicy.compose(
            retry=RetryConfig(max_tries=None, interval=1.0),
            replication=ReplicationConfig(mode=ReplicationMode.REPLICA),
            checkpoint=CheckpointConfig(restart_from_checkpoint=True),
        )
        backoff = FailurePolicy.backoff_retrying(
            None, interval=1.0, backoff_factor=2.0, max_interval=8.0
        )
        return (
            WorkflowBuilder("combined")
            .program("p", hosts=["h1", "h2", "h3"])
            .activity("replicated", implement="p", policy=replication_checkpointing)
            .activity("paced", implement="p", policy=backoff)
            .transition("replicated", "paced")
            .build()
        )

    def test_combined_policies_roundtrip_exactly(self):
        wf = self.combined_workflow()
        reparsed = parse_wpdl(serialize_wpdl(wf))
        assert reparsed == wf
        # ...and the reparsed policies still resolve to the same strategy
        # compositions the original would execute under.
        from repro.engine.strategies import resolve_strategy

        assert (
            resolve_strategy(reparsed.node("replicated").policy).describe()
            == "replicate(checkpoint_restart(retry))"
        )
        assert (
            resolve_strategy(reparsed.node("paced").policy).describe()
            == "checkpoint_restart(backoff_retry)"
        )

    def test_backoff_attributes_emitted_only_when_set(self):
        wf = self.combined_workflow()
        text = serialize_wpdl(wf).replace("'", '"')
        assert 'backoff="2.0"' in text
        assert 'max_interval="8.0"' in text
        plain = WorkflowBuilder("w").dummy("t").build()
        assert "backoff" not in serialize_wpdl(plain)

    def test_combined_spec_passes_vocabulary_lint(self):
        from repro.wpdl.schema import check_vocabulary

        assert check_vocabulary(serialize_wpdl(self.combined_workflow())) == []


class TestTimeoutRoundTrip:
    def test_attempt_timeout_serialised(self):
        wf = (
            WorkflowBuilder("w")
            .program("p", hosts=["h"])
            .activity(
                "t",
                implement="p",
                policy=FailurePolicy(max_tries=2, attempt_timeout=45.0),
            )
            .build()
        )
        text = serialize_wpdl(wf)
        assert 'timeout="45.0"' in text.replace("'", '"')
        assert parse_wpdl(text) == wf
