"""Unit tests for the WPDL serializer (round-trip with the parser)."""

from __future__ import annotations

import pytest

from repro.core.policy import FailurePolicy, ResourceSelection
from repro.errors import SpecificationError
from repro.wpdl import (
    JoinMode,
    Option,
    Parameter,
    TransitionCondition,
    WorkflowBuilder,
    parse_wpdl,
    serialize_wpdl,
)
from repro.wpdl.serializer import workflow_to_element


def rich_workflow():
    """A workflow exercising every serialisable construct."""
    body = (
        WorkflowBuilder("refine_body")
        .program("solver", hosts=["s1"])
        .activity("solve", implement="solver", outputs=["residual"])
        .build()
    )
    return (
        WorkflowBuilder("rich")
        .variable("threshold", 0.5)
        .variable("label", "x")
        .variable("limit", 10)
        .variable("flag", True)
        .variable("nothing", None)
        .program(
            "fast",
            options=[
                Option(hostname="u1", executable_dir="/opt/bin", executable="fast2"),
                Option(hostname="u2", service="batch"),
            ],
        )
        .program("slow", hosts=["r1"])
        .activity(
            "FU",
            implement="fast",
            policy=FailurePolicy(
                max_tries=None,
                interval=2.5,
                resource_selection=ResourceSelection.ROTATE,
                restart_from_checkpoint=False,
                retry_on_exception=True,
            ),
            inputs=[Parameter("n", value=7), Parameter("prev", ref="seed")],
            outputs=["result"],
            description="fast but unreliable",
        )
        .activity("SR", implement="slow", policy=FailurePolicy.replica())
        .dummy("DJ", join=JoinMode.OR)
        .loop("refine", body, "residual > threshold", max_iterations=7)
        .variable("seed", 1)
        .transition("FU", "DJ")
        .on_exception("FU", "disk_*", "SR")
        .on_failure("FU", "SR")
        .transition("SR", "DJ")
        .transition("DJ", "refine")
        .when("DJ", "limit > 5", "refine")
        .build(validate_graph=False)  # replica with wildcard host count etc.
    )


class TestRoundTrip:
    def test_rich_workflow_roundtrips_exactly(self):
        wf = rich_workflow()
        text = serialize_wpdl(wf)
        assert parse_wpdl(text, validate_graph=False) == wf

    def test_minimal_workflow_roundtrips(self):
        wf = WorkflowBuilder("tiny").dummy("only").build()
        assert parse_wpdl(serialize_wpdl(wf)) == wf

    def test_nested_loop_roundtrips(self):
        inner = WorkflowBuilder("inner").dummy("t").build()
        middle = (
            WorkflowBuilder("middle").loop("il", inner, "x > 1").build()
        )
        outer = WorkflowBuilder("outer").loop("ol", middle, "y > 1").build()
        assert parse_wpdl(serialize_wpdl(outer)) == outer


class TestOutputShape:
    def test_default_attributes_omitted(self):
        wf = WorkflowBuilder("w").dummy("t").build()
        text = serialize_wpdl(wf)
        assert "max_tries" not in text
        assert "interval" not in text
        assert "join=" not in text
        assert "policy=" not in text

    def test_unlimited_tries_serialised_as_keyword(self):
        wf = (
            WorkflowBuilder("w")
            .program("p", hosts=["h"])
            .activity("t", implement="p", policy=FailurePolicy.retrying(None))
            .build()
        )
        assert 'max_tries="unlimited"' in serialize_wpdl(wf)

    def test_pretty_and_compact_modes(self):
        wf = WorkflowBuilder("w").dummy("t").build()
        pretty = serialize_wpdl(wf, pretty=True)
        compact = serialize_wpdl(wf, pretty=False)
        assert "\n" in pretty
        assert parse_wpdl(compact) == wf

    def test_element_tag_override(self):
        wf = WorkflowBuilder("w").dummy("t").build()
        elem = workflow_to_element(wf, tag="Body")
        assert elem.tag == "Body"

    def test_unserialisable_variable_rejected(self):
        wf = WorkflowBuilder("w").dummy("t").variable("bad", object()).build()
        with pytest.raises(SpecificationError, match="cannot serialise"):
            serialize_wpdl(wf)


class TestTimeoutRoundTrip:
    def test_attempt_timeout_serialised(self):
        wf = (
            WorkflowBuilder("w")
            .program("p", hosts=["h"])
            .activity(
                "t",
                implement="p",
                policy=FailurePolicy(max_tries=2, attempt_timeout=45.0),
            )
            .build()
        )
        text = serialize_wpdl(wf)
        assert 'timeout="45.0"' in text.replace("'", '"')
        assert parse_wpdl(text) == wf
