"""Unit tests for the WPDL model (AST) and its local invariants."""

from __future__ import annotations

import pytest

from repro.errors import SpecificationError
from repro.wpdl.model import (
    Activity,
    ConditionKind,
    Loop,
    Option,
    Parameter,
    Program,
    Transition,
    TransitionCondition,
    Workflow,
)


class TestOptionAndProgram:
    def test_option_requires_hostname(self):
        with pytest.raises(SpecificationError):
            Option(hostname="")

    def test_program_requires_options(self):
        with pytest.raises(SpecificationError):
            Program(name="p", options=())

    def test_executable_override_per_option(self):
        program = Program(
            name="sum",
            options=(
                Option(hostname="a"),
                Option(hostname="b", executable="sum_v2"),
            ),
        )
        assert program.executable_on(program.options[0]) == "sum"
        assert program.executable_on(program.options[1]) == "sum_v2"


class TestParameter:
    def test_literal_and_ref_are_exclusive(self):
        with pytest.raises(SpecificationError):
            Parameter(name="x", value=1, ref="other")

    def test_ref_parameter(self):
        p = Parameter(name="x", ref="upstream")
        assert p.ref == "upstream" and p.value is None


class TestTransitionCondition:
    def test_done_default(self):
        assert Transition("a", "b").condition.kind is ConditionKind.DONE

    def test_exception_requires_pattern(self):
        with pytest.raises(SpecificationError):
            TransitionCondition(ConditionKind.EXCEPTION)

    def test_expr_requires_expression(self):
        with pytest.raises(SpecificationError):
            TransitionCondition(ConditionKind.EXPR)

    def test_pattern_only_on_exception_kind(self):
        with pytest.raises(SpecificationError):
            TransitionCondition(ConditionKind.DONE, exception="x")

    def test_expr_only_on_expr_kind(self):
        with pytest.raises(SpecificationError):
            TransitionCondition(ConditionKind.FAILED, expr="x > 1")

    def test_constructors(self):
        assert TransitionCondition.failed().kind is ConditionKind.FAILED
        assert TransitionCondition.always().kind is ConditionKind.ALWAYS
        assert TransitionCondition.on_exception("oom").exception == "oom"
        assert TransitionCondition.when("x > 1").expr == "x > 1"

    def test_self_transition_rejected(self):
        with pytest.raises(SpecificationError, match="self-transition"):
            Transition("a", "a")


class TestActivity:
    def test_dummy_detection(self):
        assert Activity(name="split").dummy
        assert not Activity(name="t", implement="p").dummy

    def test_name_required(self):
        with pytest.raises(SpecificationError):
            Activity(name="")


class TestLoop:
    def body(self):
        return Workflow(
            name="body",
            nodes={"t": Activity(name="t")},
        )

    def test_requires_condition(self):
        with pytest.raises(SpecificationError):
            Loop(name="l", body=self.body(), condition="")

    def test_max_iterations_positive(self):
        with pytest.raises(SpecificationError):
            Loop(name="l", body=self.body(), condition="x", max_iterations=0)


class TestWorkflowGraph:
    @pytest.fixture
    def diamond(self):
        return Workflow(
            name="diamond",
            nodes={
                "a": Activity(name="a"),
                "b": Activity(name="b"),
                "c": Activity(name="c"),
                "d": Activity(name="d"),
            },
            transitions=(
                Transition("a", "b"),
                Transition("a", "c"),
                Transition("b", "d"),
                Transition("c", "d"),
            ),
        )

    def test_entry_and_exit_nodes(self, diamond):
        assert diamond.entry_nodes() == ["a"]
        assert diamond.exit_nodes() == ["d"]

    def test_incoming_outgoing(self, diamond):
        assert {t.target for t in diamond.outgoing("a")} == {"b", "c"}
        assert {t.source for t in diamond.incoming("d")} == {"b", "c"}

    def test_node_lookup_error(self, diamond):
        with pytest.raises(SpecificationError):
            diamond.node("ghost")

    def test_node_key_mismatch_rejected(self):
        with pytest.raises(SpecificationError, match="does not match"):
            Workflow(name="w", nodes={"x": Activity(name="y")})

    def test_program_for_dummy_is_none(self, diamond):
        assert diamond.program_for(diamond.node("a")) is None

    def test_program_for_unknown_program_raises(self):
        wf = Workflow(
            name="w", nodes={"t": Activity(name="t", implement="missing")}
        )
        with pytest.raises(SpecificationError, match="unknown program"):
            wf.program_for(wf.node("t"))

    def test_activities_and_loops_partition(self):
        body = Workflow(name="b", nodes={"x": Activity(name="x")})
        wf = Workflow(
            name="w",
            nodes={
                "t": Activity(name="t"),
                "l": Loop(name="l", body=body, condition="x"),
            },
        )
        assert [a.name for a in wf.activities()] == ["t"]
        assert [lp.name for lp in wf.loops()] == ["l"]
