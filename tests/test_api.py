"""Unit tests for the task-side notification API (TaskContext)."""

from __future__ import annotations

import pytest

from repro.core.exceptions import UserException
from repro.detection.api import TaskContext, UserExceptionSignal
from repro.detection.messages import (
    CheckpointNotice,
    ExceptionNotice,
    TaskEnd,
    TaskStart,
)
from repro.errors import DetectionError


@pytest.fixture
def ctx_and_sent():
    sent = []
    clock = {"t": 0.0}
    ctx = TaskContext(
        "job-1", "n1", send=sent.append, clock=lambda: clock["t"]
    )
    return ctx, sent, clock


class TestNotifications:
    def test_task_start_message(self, ctx_and_sent):
        ctx, sent, clock = ctx_and_sent
        clock["t"] = 3.0
        ctx.task_start()
        assert sent == [TaskStart(sent_at=3.0, job_id="job-1", hostname="n1")]

    def test_task_start_twice_rejected(self, ctx_and_sent):
        ctx, _, _ = ctx_and_sent
        ctx.task_start()
        with pytest.raises(DetectionError, match="twice"):
            ctx.task_start()

    def test_task_end_with_result(self, ctx_and_sent):
        ctx, sent, _ = ctx_and_sent
        ctx.task_end({"answer": 42})
        assert isinstance(sent[-1], TaskEnd)
        assert sent[-1].result == {"answer": 42}

    def test_task_end_twice_rejected(self, ctx_and_sent):
        ctx, _, _ = ctx_and_sent
        ctx.task_end()
        with pytest.raises(DetectionError):
            ctx.task_end()

    def test_checkpoint_notice_carries_flag_and_progress(self, ctx_and_sent):
        ctx, sent, _ = ctx_and_sent
        ctx.task_checkpoint("ckpt-7", progress=0.35)
        notice = sent[-1]
        assert isinstance(notice, CheckpointNotice)
        assert notice.flag == "ckpt-7"
        assert notice.progress == 0.35

    def test_empty_checkpoint_flag_rejected(self, ctx_and_sent):
        ctx, _, _ = ctx_and_sent
        with pytest.raises(DetectionError):
            ctx.task_checkpoint("")


class TestExceptions:
    def test_raise_exception_sends_then_raises(self, ctx_and_sent):
        ctx, sent, _ = ctx_and_sent
        with pytest.raises(UserExceptionSignal) as exc_info:
            ctx.raise_exception("disk_full", "no space", free_gb=0.2)
        notice = sent[-1]
        assert isinstance(notice, ExceptionNotice)
        assert notice.exception.name == "disk_full"
        assert notice.exception.data == {"free_gb": 0.2}
        assert exc_info.value.exception.name == "disk_full"

    def test_send_exception_does_not_abort(self, ctx_and_sent):
        ctx, sent, _ = ctx_and_sent
        ctx.send_exception(UserException("warning_only"))
        assert isinstance(sent[-1], ExceptionNotice)  # and no raise


class TestResume:
    def test_fresh_start_not_resuming(self, ctx_and_sent):
        ctx, _, _ = ctx_and_sent
        assert not ctx.resuming
        assert ctx.checkpoint_flag is None

    def test_resuming_exposes_flag(self):
        ctx = TaskContext(
            "j", "h", send=lambda m: None, clock=lambda: 0.0,
            checkpoint_flag="ckpt-3",
        )
        assert ctx.resuming
        assert ctx.checkpoint_flag == "ckpt-3"

    def test_now_reads_clock(self, ctx_and_sent):
        ctx, _, clock = ctx_and_sent
        clock["t"] = 9.0
        assert ctx.now() == 9.0
