"""Unit tests for the wall-clock reactor."""

from __future__ import annotations

import threading
import time

import pytest

from repro.reactor import RealTimeReactor


@pytest.fixture
def rt() -> RealTimeReactor:
    return RealTimeReactor()


class TestTimers:
    def test_timer_fires_after_delay(self, rt):
        fired = []
        rt.call_later(0.01, lambda: fired.append(rt.now()))
        rt.run_until_idle(timeout=1.0)
        assert len(fired) == 1
        assert fired[0] >= 0.009

    def test_timers_fire_in_order(self, rt):
        order = []
        rt.call_later(0.02, lambda: order.append("b"))
        rt.call_later(0.01, lambda: order.append("a"))
        rt.run_until_idle(timeout=1.0)
        assert order == ["a", "b"]

    def test_cancelled_timer_skipped(self, rt):
        fired = []
        handle = rt.call_later(0.01, lambda: fired.append(1))
        handle.cancel()
        rt.run_until_idle(timeout=0.2)
        assert fired == []

    def test_negative_delay_rejected(self, rt):
        with pytest.raises(ValueError):
            rt.call_later(-1.0, lambda: None)

    def test_call_soon_runs_immediately(self, rt):
        fired = []
        rt.call_soon(lambda: fired.append(1))
        rt.run_until_idle(timeout=0.5)
        assert fired == [1]


class TestHeapCompaction:
    """The reactor shares :class:`repro.timerheap.TimerHeap` with the sim
    kernel: mass cancellation compacts the heap instead of leaving dead
    entries until their deadlines."""

    def test_mass_cancellation_compacts_heap(self, rt):
        handles = [rt.call_later(30.0, lambda: None) for _ in range(200)]
        for handle in handles[:150]:
            handle.cancel()
        # Compaction triggered at >= 64 cancelled and cancelled >= half the
        # heap: 150 cancels on 200 entries leave well under 200 entries.
        assert len(rt._timers.heap) < 200
        assert rt._timers.live_count() == 50
        for handle in handles[150:]:
            handle.cancel()
        rt.run_until_idle(timeout=0.5)  # returns promptly: nothing live

    def test_cancelled_timers_do_not_fire(self, rt):
        fired = []
        handles = [
            rt.call_later(0.01, lambda i=i: fired.append(i)) for i in range(100)
        ]
        for handle in handles[::2]:
            handle.cancel()
        rt.run_until_idle(timeout=2.0)
        assert sorted(fired) == list(range(1, 100, 2))


class TestPost:
    def test_post_from_same_thread(self, rt):
        fired = []
        rt.post(lambda: fired.append(1))
        rt.run_until_idle(timeout=0.5)
        assert fired == [1]

    def test_post_from_worker_thread_wakes_reactor(self, rt):
        fired = []
        rt.acquire_keepalive()

        def worker():
            time.sleep(0.02)
            rt.post(lambda: fired.append(threading.current_thread().name))
            rt.release_keepalive()

        threading.Thread(target=worker, daemon=True).start()
        rt.run_until_idle(timeout=2.0)
        assert len(fired) == 1
        # The callback ran on the reactor thread, not the worker.
        assert fired[0] == threading.current_thread().name

    def test_posted_callbacks_run_fifo(self, rt):
        order = []
        rt.post(lambda: order.append(1))
        rt.post(lambda: order.append(2))
        rt.run_until_idle(timeout=0.5)
        assert order == [1, 2]


class TestIdleAndStop:
    def test_run_until_idle_returns_with_no_work(self, rt):
        start = time.monotonic()
        rt.run_until_idle()
        assert time.monotonic() - start < 0.5

    def test_keepalive_blocks_idle_until_released(self, rt):
        rt.acquire_keepalive()

        def releaser():
            time.sleep(0.03)
            rt.release_keepalive()

        threading.Thread(target=releaser, daemon=True).start()
        start = time.monotonic()
        rt.run_until_idle(timeout=2.0)
        assert time.monotonic() - start >= 0.02

    def test_stop_interrupts_loop(self, rt):
        rt.acquire_keepalive()  # would otherwise wait forever

        def stopper():
            time.sleep(0.02)
            rt.stop()

        threading.Thread(target=stopper, daemon=True).start()
        rt.run_until_idle(timeout=5.0)  # returns promptly thanks to stop()
        rt.release_keepalive()

    def test_run_until_complete_predicate(self, rt):
        state = {"done": False}
        rt.call_later(0.02, lambda: state.update(done=True))
        assert rt.run_until_complete(lambda: state["done"], timeout=2.0)

    def test_run_until_complete_idle_without_completion(self, rt):
        assert rt.run_until_complete(lambda: False, timeout=0.3) is False
