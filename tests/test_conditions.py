"""Unit tests for the safe condition-expression evaluator."""

from __future__ import annotations

import pytest

from repro.errors import SpecificationError
from repro.wpdl.conditions import compile_condition, evaluate_condition


class TestEvaluation:
    @pytest.mark.parametrize(
        "expr,variables,expected",
        [
            ("x > 3", {"x": 5}, True),
            ("x > 3", {"x": 2}, False),
            ("x == 'converged'", {"x": "converged"}, True),
            ("x != y", {"x": 1, "y": 2}, True),
            ("a and b", {"a": True, "b": False}, False),
            ("a or b", {"a": False, "b": True}, True),
            ("not done", {"done": False}, True),
            ("x + y * 2 >= 10", {"x": 2, "y": 4}, True),
            ("x % 2 == 0", {"x": 4}, True),
            ("x ** 2 < 20", {"x": 4}, True),
            ("-x < 0", {"x": 3}, True),
            ("1 < x < 5", {"x": 3}, True),
            ("1 < x < 5", {"x": 7}, False),
            ("abs(err) < 0.1", {"err": -0.05}, True),
            ("min(a, b) == 1", {"a": 1, "b": 2}, True),
            ("max(a, b) == 2", {"a": 1, "b": 2}, True),
            ("len(items) == 3", {"items": [1, 2, 3]}, True),
            ("round(x) == 3", {"x": 2.7}, True),
            ("x in (1, 2, 3)", {"x": 2}, True),
            ("x not in (1, 2)", {"x": 5}, True),
            ("items[0] > 0", {"items": [5]}, True),
            ("('yes' if flag else 'no') == 'yes'", {"flag": True}, True),
            ("x / y > 1", {"x": 4, "y": 2}, True),
            ("x // 2 == 3", {"x": 7}, True),
        ],
    )
    def test_expressions(self, expr, variables, expected):
        assert evaluate_condition(expr, variables) is expected

    def test_missing_variable_is_none_and_falsy(self):
        assert evaluate_condition("missing", {}) is False

    def test_missing_variable_comparisons_are_false(self):
        # Ordering comparisons against a missing output: branch not taken.
        assert evaluate_condition("missing > 3", {}) is False
        assert evaluate_condition("missing == 3", {}) is False

    def test_missing_variable_inequality_is_true(self):
        assert evaluate_condition("missing != 3", {}) is True

    def test_subscript_out_of_range_is_none(self):
        assert evaluate_condition("items[9]", {"items": [1]}) is False

    def test_division_by_zero_raises_specification_error(self):
        with pytest.raises(SpecificationError, match="failed to evaluate"):
            evaluate_condition("1 / x", {"x": 0})

    def test_compiled_program_reusable(self):
        prog = compile_condition("count < 5")
        assert prog.evaluate({"count": 1})
        assert not prog.evaluate({"count": 9})
        assert prog.source == "count < 5"


class TestSafety:
    @pytest.mark.parametrize(
        "expr",
        [
            "__import__('os').system('rm -rf /')",
            "open('/etc/passwd')",
            "x.__class__",
            "(lambda: 1)()",
            "[i for i in range(10)]",
            "{'a': 1}",
            "exec('1')",
            "x @ y",
            "x << 2",
            "f'{x}'",
            "x := 5",
        ],
    )
    def test_dangerous_constructs_rejected_at_compile_time(self, expr):
        with pytest.raises(SpecificationError):
            compile_condition(expr)

    def test_only_whitelisted_calls(self):
        with pytest.raises(SpecificationError, match="only calls"):
            compile_condition("sorted(x)")

    def test_no_keyword_arguments(self):
        with pytest.raises(SpecificationError):
            compile_condition("round(x, ndigits=2)")

    def test_empty_expression_rejected(self):
        with pytest.raises(SpecificationError, match="empty"):
            compile_condition("   ")

    def test_syntax_error_reported(self):
        with pytest.raises(SpecificationError, match="not a valid expression"):
            compile_condition("x >")

    def test_bytes_constant_rejected(self):
        with pytest.raises(SpecificationError):
            compile_condition("x == b'raw'")

    def test_shortcircuit_semantics(self):
        # `and`/`or` follow Python truthiness; result is coerced to bool.
        assert evaluate_condition("1 and 2", {}) is True
        assert evaluate_condition("0 and (1 / x)", {"x": 0}) is False  # no div
        assert evaluate_condition("1 or (1 / x)", {"x": 0}) is True
