"""Unit tests for the seeded random stream factory."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.grid.random import DEFAULT_SEED, RandomStreams, exponential_rate


class TestStreams:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(seed=7)
        assert streams.get("a") is streams.get("a")

    def test_different_names_are_independent(self):
        streams = RandomStreams(seed=7)
        a = streams.get("a").random(100)
        b = streams.get("b").random(100)
        assert not np.allclose(a, b)

    def test_same_seed_reproduces_draws(self):
        x1 = RandomStreams(seed=3).get("host.n1").random(10)
        x2 = RandomStreams(seed=3).get("host.n1").random(10)
        assert np.array_equal(x1, x2)

    def test_new_stream_does_not_perturb_existing(self):
        s1 = RandomStreams(seed=3)
        s1.get("other")  # create an unrelated stream first
        with_other = s1.get("target").random(10)
        s2 = RandomStreams(seed=3)
        without_other = s2.get("target").random(10)
        assert np.array_equal(with_other, without_other)

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).get("x").random(20)
        b = RandomStreams(seed=2).get("x").random(20)
        assert not np.allclose(a, b)

    def test_spawn_derives_independent_factory(self):
        parent = RandomStreams(seed=5)
        child = parent.spawn("replica-1")
        assert child.seed != parent.seed
        a = parent.get("x").random(10)
        b = child.get("x").random(10)
        assert not np.allclose(a, b)


class TestDistributions:
    def test_ttf_mean_approximates_mttf(self):
        streams = RandomStreams(seed=11)
        draws = [streams.ttf("h", 50.0) for _ in range(5000)]
        assert 47.0 < float(np.mean(draws)) < 53.0

    def test_ttf_infinite_mttf_is_inf(self):
        streams = RandomStreams()
        assert streams.ttf("h", math.inf) == math.inf

    def test_ttf_invalid_mttf(self):
        with pytest.raises(ValueError):
            RandomStreams().ttf("h", 0.0)

    def test_downtime_zero_mean_is_zero(self):
        assert RandomStreams().downtime("h", 0.0) == 0.0

    def test_downtime_mean(self):
        streams = RandomStreams(seed=12)
        draws = [streams.downtime("h", 10.0) for _ in range(5000)]
        assert 9.3 < float(np.mean(draws)) < 10.7

    def test_downtime_negative_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams().downtime("h", -1.0)

    def test_bernoulli_extremes_consume_no_randomness(self):
        streams = RandomStreams(seed=13)
        assert streams.bernoulli("b", 0.0) is False
        assert streams.bernoulli("b", 1.0) is True
        # The stream was never created by the extreme draws.
        before = streams.get("b").bit_generator.state
        assert streams.bernoulli("b", 0.0) is False
        assert streams.get("b").bit_generator.state == before

    def test_bernoulli_probability(self):
        streams = RandomStreams(seed=14)
        hits = sum(streams.bernoulli("b", 0.3) for _ in range(10000))
        assert 2800 < hits < 3200

    def test_bernoulli_invalid_p(self):
        with pytest.raises(ValueError):
            RandomStreams().bernoulli("b", 1.5)


class TestExponentialRate:
    def test_reciprocal(self):
        assert exponential_rate(20.0) == pytest.approx(0.05)

    def test_infinite_mttf_rate_zero(self):
        assert exponential_rate(math.inf) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            exponential_rate(-1.0)

    def test_default_seed_constant(self):
        assert DEFAULT_SEED == 20030623
