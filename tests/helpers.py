"""Shared workflow-construction helpers for the test suite."""

from __future__ import annotations

from repro.core import FailurePolicy
from repro.engine import WorkflowEngine
from repro.grid import RELIABLE, FixedDurationTask, SimulatedGrid
from repro.wpdl import JoinMode, WorkflowBuilder


def single_task_workflow(
    name: str = "single",
    *,
    host: str = "h1",
    policy: FailurePolicy = FailurePolicy(),
    executable: str = "task",
):
    """A one-activity workflow used by many engine tests."""
    return (
        WorkflowBuilder(name)
        .program(executable, hosts=[host])
        .activity("task", implement=executable, policy=policy)
        .build()
    )


def run_workflow(workflow, grid: SimulatedGrid, *, timeout: float = 1e7):
    """Run *workflow* on *grid* and return the WorkflowResult."""
    engine = WorkflowEngine(workflow, grid, reactor=grid.reactor)
    return engine.run(timeout=timeout)


def fig4_workflow(*, fu_policy: FailurePolicy = FailurePolicy.retrying(2)):
    """The alternative-task DAG of the paper's Figure 4."""
    return (
        WorkflowBuilder("fig4")
        .program("fast", hosts=["u1"])
        .program("slow", hosts=["r1"])
        .activity("FU", implement="fast", policy=fu_policy)
        .activity("SR", implement="slow")
        .dummy("Join", join=JoinMode.OR)
        .transition("FU", "Join")
        .on_failure("FU", "SR")
        .transition("SR", "Join")
        .build()
    )


def fig5_workflow():
    """The workflow-level redundancy DAG of the paper's Figure 5."""
    return (
        WorkflowBuilder("fig5")
        .program("fast", hosts=["u1"])
        .program("slow", hosts=["r1"])
        .dummy("Split")
        .activity("FU", implement="fast")
        .activity("SR", implement="slow")
        .dummy("Join", join=JoinMode.OR)
        .redundant("Split", "Join", "FU", "SR")
        .build()
    )


def fig6_workflow(*, fu_policy: FailurePolicy = FailurePolicy()):
    """The user-defined exception handling DAG of the paper's Figure 6."""
    return (
        WorkflowBuilder("fig6")
        .program("fast", hosts=["u1"])
        .program("slow", hosts=["r1"])
        .activity("FU", implement="fast", policy=fu_policy)
        .activity("SR", implement="slow")
        .dummy("DJ", join=JoinMode.OR)
        .transition("FU", "DJ")
        .on_exception("FU", "disk_full", "SR")
        .transition("SR", "DJ")
        .build()
    )


def two_reliable_hosts(grid: SimulatedGrid) -> SimulatedGrid:
    grid.add_host(RELIABLE("u1"))
    grid.add_host(RELIABLE("r1"))
    return grid


def install_fixed(grid: SimulatedGrid, host: str, name: str, duration: float, result=None):
    grid.install(host, name, FixedDurationTask(duration, result=result))
