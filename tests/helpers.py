"""Shared workflow-construction helpers for the test suite."""

from __future__ import annotations

from repro.core import FailurePolicy
from repro.engine import WorkflowEngine
from repro.grid import RELIABLE, FixedDurationTask, SimulatedGrid
from repro.wpdl import JoinMode, WorkflowBuilder


def single_task_workflow(
    name: str = "single",
    *,
    host: str = "h1",
    policy: FailurePolicy = FailurePolicy(),
    executable: str = "task",
):
    """A one-activity workflow used by many engine tests."""
    return (
        WorkflowBuilder(name)
        .program(executable, hosts=[host])
        .activity("task", implement=executable, policy=policy)
        .build()
    )


def run_workflow(workflow, grid: SimulatedGrid, *, timeout: float = 1e7):
    """Run *workflow* on *grid* and return the WorkflowResult."""
    engine = WorkflowEngine(workflow, grid, reactor=grid.reactor)
    return engine.run(timeout=timeout)


def run_multiplexed(workflows, grid: SimulatedGrid, *, timeout: float = 1e7):
    """Run *workflows* as concurrent instances on one shared runtime.

    Returns their WorkflowResults in submission order (one per entry;
    repeated spec objects become independent instances).
    """
    from repro.engine import EngineHost

    host = EngineHost(grid, reactor=grid.reactor)
    ids = [host.submit(wf) for wf in workflows]
    results = host.wait_all(timeout=timeout)
    return [results[wfid] for wfid in ids]


def run_isolated(workflows, grid_factory, *, timeout: float = 1e7):
    """Run each workflow alone on a fresh grid from *grid_factory* — the
    sequential reference the multiplexed execution is compared against."""
    return [run_workflow(wf, grid_factory(), timeout=timeout) for wf in workflows]


def result_identity(result):
    """The comparable content of a WorkflowResult (multiplexed instances
    must be bit-identical to isolated runs on these fields)."""
    return (
        result.workflow,
        result.status,
        result.variables,
        result.completion_time,
        result.node_statuses,
        result.failed_tasks,
        result.tries,
    )


def fig4_workflow(*, fu_policy: FailurePolicy = FailurePolicy.retrying(2)):
    """The alternative-task DAG of the paper's Figure 4."""
    return (
        WorkflowBuilder("fig4")
        .program("fast", hosts=["u1"])
        .program("slow", hosts=["r1"])
        .activity("FU", implement="fast", policy=fu_policy)
        .activity("SR", implement="slow")
        .dummy("Join", join=JoinMode.OR)
        .transition("FU", "Join")
        .on_failure("FU", "SR")
        .transition("SR", "Join")
        .build()
    )


def fig5_workflow():
    """The workflow-level redundancy DAG of the paper's Figure 5."""
    return (
        WorkflowBuilder("fig5")
        .program("fast", hosts=["u1"])
        .program("slow", hosts=["r1"])
        .dummy("Split")
        .activity("FU", implement="fast")
        .activity("SR", implement="slow")
        .dummy("Join", join=JoinMode.OR)
        .redundant("Split", "Join", "FU", "SR")
        .build()
    )


def fig6_workflow(*, fu_policy: FailurePolicy = FailurePolicy()):
    """The user-defined exception handling DAG of the paper's Figure 6."""
    return (
        WorkflowBuilder("fig6")
        .program("fast", hosts=["u1"])
        .program("slow", hosts=["r1"])
        .activity("FU", implement="fast", policy=fu_policy)
        .activity("SR", implement="slow")
        .dummy("DJ", join=JoinMode.OR)
        .transition("FU", "DJ")
        .on_exception("FU", "disk_full", "SR")
        .transition("SR", "DJ")
        .build()
    )


def two_reliable_hosts(grid: SimulatedGrid) -> SimulatedGrid:
    grid.add_host(RELIABLE("u1"))
    grid.add_host(RELIABLE("r1"))
    return grid


def install_fixed(grid: SimulatedGrid, host: str, name: str, duration: float, result=None):
    grid.install(host, name, FixedDurationTask(duration, result=result))
