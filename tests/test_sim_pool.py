"""Tests for the persistent worker pool and per-worker sampler cache.

The amortization contract: one process-wide executor shared by every
caller, one ``EngineSampler`` per configuration per process — and neither
form of reuse may change a single bit of any sample vector.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import SimulationParams, engine_samples
from repro.sim.parallel import _engine_shard, seed_for
from repro.sim.pool import (
    clear_sampler_cache,
    get_pool,
    persistent_pool,
    pool_size,
    sampler_cache_info,
    shutdown_pool,
    worker_sampler,
)

FAULTY = SimulationParams(mttf=15.0, downtime=30.0)
TIMEOUT = 10_000_000.0


@pytest.fixture
def fresh_pool():
    """Exact-size assertions need a clean slate: earlier tests in the
    session may have grown the shared pool already."""
    shutdown_pool()
    yield


class TestPoolSingleton:
    @pytest.fixture(autouse=True)
    def _isolate(self, fresh_pool):
        pass

    def test_get_pool_returns_the_same_executor(self):
        a = get_pool(2)
        b = get_pool(2)
        assert a is b
        assert pool_size() == 2

    def test_smaller_requests_reuse_the_existing_pool(self):
        a = get_pool(2)
        assert get_pool(1) is a
        assert pool_size() == 2

    def test_larger_requests_grow_the_pool(self):
        a = get_pool(1)
        b = get_pool(2)
        assert b is not a
        assert pool_size() == 2

    def test_shutdown_is_idempotent_and_restarts_lazily(self):
        get_pool(2)
        shutdown_pool()
        shutdown_pool()
        assert pool_size() == 0
        assert get_pool(1) is not None
        assert pool_size() == 1

    def test_rejects_nonpositive_worker_counts(self):
        with pytest.raises(ValueError):
            get_pool(0)

    def test_pool_survives_work(self):
        pool = get_pool(2)
        assert pool.submit(sum, (1, 2, 3)).result() == 6
        assert get_pool(2) is pool


class TestPersistentPoolContext:
    @pytest.fixture(autouse=True)
    def _isolate(self, fresh_pool):
        pass

    def test_yields_the_shared_pool_and_leaves_it_running(self):
        with persistent_pool(2) as pool:
            assert pool is get_pool(2)
        # Persistence is the point: the pool outlives the with block.
        assert pool_size() == 2
        assert get_pool(2) is pool

    def test_shutdown_on_exit_tears_down(self):
        with persistent_pool(1, shutdown_on_exit=True) as pool:
            assert pool.submit(len, "abc").result() == 3
        assert pool_size() == 0


class TestWorkerSamplerCache:
    def test_same_configuration_hits_the_cache(self):
        clear_sampler_cache()
        a = worker_sampler("retrying", FAULTY, TIMEOUT)
        b = worker_sampler("retrying", FAULTY, TIMEOUT)
        assert a is b
        info = sampler_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1 and info["size"] == 1

    def test_different_configurations_get_distinct_samplers(self):
        clear_sampler_cache()
        a = worker_sampler("retrying", FAULTY, TIMEOUT)
        b = worker_sampler("checkpointing", FAULTY, TIMEOUT)
        c = worker_sampler("retrying", FAULTY.with_mttf(50.0), TIMEOUT)
        d = worker_sampler("retrying", FAULTY, 5_000.0)
        assert len({id(s) for s in (a, b, c, d)}) == 4
        assert sampler_cache_info()["misses"] == 4

    def test_cached_sampler_is_bit_identical_to_fresh(self):
        from repro.sim.engine_mc import EngineSampler

        clear_sampler_cache()
        base = FAULTY.seed
        # First shard populates the cache, second reuses the sampler.
        _, first, stats = _engine_shard(
            "checkpointing", FAULTY, base, 0, 4, TIMEOUT
        )
        _, again, _ = _engine_shard(
            "checkpointing", FAULTY, base, 0, 4, TIMEOUT
        )
        assert np.array_equal(first, again)
        assert stats is None  # stats are opt-in (collect_stats=True)
        fresh = EngineSampler("checkpointing", FAULTY, timeout=TIMEOUT)
        want = [fresh.run(seed_for(base, i)) for i in range(4)]
        assert first.tolist() == want

    def test_in_process_sequential_path_uses_the_cache(self):
        clear_sampler_cache()
        engine_samples("retrying", FAULTY, runs=3, jobs=1)
        misses_after_first = sampler_cache_info()["misses"]
        engine_samples("retrying", FAULTY, runs=3, jobs=1)
        info = sampler_cache_info()
        assert info["misses"] == misses_after_first  # no new world built
        assert info["hits"] >= 1


class TestPooledBitIdentity:
    def test_warm_pool_matches_sequential(self):
        seq = engine_samples("checkpointing", FAULTY, runs=8, jobs=1)
        first = engine_samples("checkpointing", FAULTY, runs=8, jobs=2)
        # Second pooled call hits warm workers with cached samplers.
        second = engine_samples("checkpointing", FAULTY, runs=8, jobs=2)
        assert np.array_equal(seq, first)
        assert np.array_equal(seq, second)

    def test_pool_shared_across_configurations(self):
        pool_before = get_pool(2)
        a = engine_samples("retrying", FAULTY, runs=4, jobs=2)
        b = engine_samples("replication", FAULTY, runs=4, jobs=2)
        assert get_pool(2) is pool_before
        assert not np.array_equal(a, b)
