"""Unit tests for the analytical completion-time models."""

from __future__ import annotations

import math

import pytest

from repro.errors import SimulationError
from repro.sim.analytical import (
    checkpoint_expected_time,
    expected_time,
    optimal_checkpoint_count,
    retry_expected_time,
)
from repro.sim.params import SimulationParams


class TestRetryModel:
    def test_no_failures_gives_f(self):
        assert retry_expected_time(30.0, 0.0) == 30.0

    def test_paper_formula_matches(self):
        # Figure 8's formula: (e^{λF} − 1)/λ at F=30, MTTF=30.
        lam = 1.0 / 30.0
        expected = (math.exp(lam * 30.0) - 1.0) / lam
        assert retry_expected_time(30.0, lam) == pytest.approx(expected)

    def test_downtime_scales_per_failure(self):
        lam = 1.0 / 30.0
        base = retry_expected_time(30.0, lam)
        with_d = retry_expected_time(30.0, lam, downtime=10.0)
        failures = math.exp(lam * 30.0) - 1.0
        assert with_d == pytest.approx(base + 10.0 * failures)

    def test_monotone_in_failure_rate(self):
        values = [retry_expected_time(30.0, lam) for lam in (0.01, 0.05, 0.1)]
        assert values == sorted(values)

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            retry_expected_time(0.0, 0.1)
        with pytest.raises(SimulationError):
            retry_expected_time(30.0, -0.1)
        with pytest.raises(SimulationError):
            retry_expected_time(30.0, 0.1, downtime=-1.0)


class TestCheckpointModel:
    def test_no_failures_gives_f_plus_kc(self):
        t = checkpoint_expected_time(
            30.0, 0.0, checkpoint_overhead=0.5, recovery_time=0.5, checkpoints=20
        )
        assert t == pytest.approx(30.0 + 20 * 0.5)

    def test_paper_figure9_formula(self):
        # F/a (C + (C + R + 1/λ)(e^{λa} − 1)) with F=30, C=R=0.5, K=20.
        lam = 1.0 / 40.0
        a = 30.0 / 20
        expected = (30.0 / a) * (
            0.5 + (0.5 + 0.5 + 1.0 / lam) * (math.exp(lam * a) - 1.0)
        )
        t = checkpoint_expected_time(
            30.0, lam, checkpoint_overhead=0.5, recovery_time=0.5, checkpoints=20
        )
        assert t == pytest.approx(expected)

    def test_checkpointing_beats_retrying_at_high_failure_rate(self):
        lam = 1.0 / 10.0  # MTTF = 10, the left edge of Figure 10
        ckpt = checkpoint_expected_time(
            30.0, lam, checkpoint_overhead=0.5, recovery_time=0.5, checkpoints=20
        )
        retry = retry_expected_time(30.0, lam)
        assert ckpt < retry

    def test_retrying_beats_checkpointing_at_low_failure_rate(self):
        lam = 1.0 / 100.0  # MTTF = 100, the right edge of Figure 10
        ckpt = checkpoint_expected_time(
            30.0, lam, checkpoint_overhead=0.5, recovery_time=0.5, checkpoints=20
        )
        retry = retry_expected_time(30.0, lam)
        assert retry < ckpt

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            checkpoint_expected_time(
                30.0, 0.1, checkpoint_overhead=-1, recovery_time=0, checkpoints=5
            )
        with pytest.raises(SimulationError):
            checkpoint_expected_time(
                30.0, 0.1, checkpoint_overhead=0, recovery_time=0, checkpoints=0
            )


class TestDispatch:
    def test_expected_time_by_name(self):
        params = SimulationParams(mttf=20.0)
        assert expected_time(params, "retrying") == pytest.approx(
            retry_expected_time(30.0, 0.05)
        )
        assert expected_time(params, "checkpointing") == pytest.approx(
            checkpoint_expected_time(
                30.0, 0.05, checkpoint_overhead=0.5, recovery_time=0.5,
                checkpoints=20,
            )
        )

    def test_replication_has_no_closed_form(self):
        with pytest.raises(SimulationError, match="no analytical model"):
            expected_time(SimulationParams(), "replication")


class TestOptimalCheckpointCount:
    def test_reliable_environment_prefers_fewer_checkpoints(self):
        k_reliable = optimal_checkpoint_count(SimulationParams(mttf=1000.0))
        k_flaky = optimal_checkpoint_count(SimulationParams(mttf=5.0))
        assert k_reliable < k_flaky

    def test_no_failures_means_one_checkpoint_floor(self):
        # With λ=0 any checkpoint is pure overhead: K=1 minimises.
        assert optimal_checkpoint_count(SimulationParams()) == 1

    def test_optimum_actually_minimises_neighbourhood(self):
        params = SimulationParams(mttf=10.0)
        k = optimal_checkpoint_count(params)

        def t(kk):
            return checkpoint_expected_time(
                params.failure_free_time,
                params.failure_rate,
                checkpoint_overhead=params.checkpoint_overhead,
                recovery_time=params.recovery_time,
                checkpoints=kk,
            )

        assert t(k) <= t(k + 1)
        if k > 1:
            assert t(k) <= t(k - 1)


class TestYoungApproximation:
    def test_interval_formula(self):
        from repro.sim.analytical import young_interval

        assert young_interval(0.5, 1 / 50.0) == pytest.approx(
            math.sqrt(2 * 0.5 * 50.0)
        )

    def test_agrees_with_bruteforce_in_reliable_regime(self):
        from repro.sim.analytical import (
            young_checkpoint_count,
        )

        # λ·a* small: first-order optimum matches the exact optimum within
        # one checkpoint.
        params = SimulationParams(mttf=500.0, failure_free_time=30.0)
        exact = optimal_checkpoint_count(params)
        young = young_checkpoint_count(30.0, 0.5, 1 / 500.0)
        assert abs(exact - young) <= 1

    def test_diverges_at_high_failure_rate(self):
        from repro.sim.analytical import young_checkpoint_count

        # λ·a* ~ 1: the expansion under-checkpoints vs the exact optimum.
        params = SimulationParams(mttf=2.0, failure_free_time=30.0)
        exact = optimal_checkpoint_count(params)
        young = young_checkpoint_count(30.0, 0.5, 1 / 2.0)
        assert exact > young

    def test_invalid_parameters(self):
        from repro.sim.analytical import young_interval

        with pytest.raises(SimulationError):
            young_interval(0.0, 0.1)
        with pytest.raises(SimulationError):
            young_interval(0.5, 0.0)
