"""Integration scenarios: multi-stage workflows combining several failure
handling techniques, mirroring the paper's Section 1 motivating examples."""

from __future__ import annotations

import pytest

from repro.core import FailurePolicy
from repro.engine import NodeStatus, WorkflowEngine, WorkflowStatus
from repro.grid import (
    RELIABLE,
    UNRELIABLE,
    CheckpointingTask,
    CrashingTask,
    ExceptionProneTask,
    FixedDurationTask,
    GridConfig,
    SimulatedGrid,
    inject_crash,
)
from repro.wpdl import JoinMode, WorkflowBuilder


def quiet_grid(seed=42):
    return SimulatedGrid(seed=seed, config=GridConfig(heartbeats=False))


class TestLinearSolverScenario:
    """Section 1: a linear solver that must converge within a deadline, with
    out-of-memory handled by switching to a disk-based algorithm."""

    def build(self):
        return (
            WorkflowBuilder("solver-pipeline")
            .program("prepare", hosts=["cluster1"])
            .program("solve_mem", hosts=["bigmem"])
            .program("solve_disk", hosts=["cluster1"])
            .program("report", hosts=["cluster1"])
            .activity("prepare", implement="prepare")
            .activity(
                "solve_fast",
                implement="solve_mem",
                policy=FailurePolicy.retrying(2),
            )
            # solve_disk is reachable via EITHER the out_of_memory edge or
            # the generic failed edge, so its join must be OR.
            .activity("solve_disk", implement="solve_disk", join=JoinMode.OR)
            .dummy("solved", join=JoinMode.OR)
            .activity("report", implement="report")
            .transition("prepare", "solve_fast")
            .transition("solve_fast", "solved")
            .on_exception("solve_fast", "out_of_memory", "solve_disk")
            .on_failure("solve_fast", "solve_disk")
            .transition("solve_disk", "solved")
            .transition("solved", "report")
            .build()
        )

    def grid(self):
        grid = quiet_grid()
        grid.add_host(RELIABLE("cluster1"))
        grid.add_host(RELIABLE("bigmem"))
        grid.install("cluster1", "prepare", FixedDurationTask(5.0))
        grid.install("cluster1", "solve_disk", FixedDurationTask(90.0, result="x"))
        grid.install("cluster1", "report", FixedDurationTask(2.0))
        return grid

    def test_memory_path_when_healthy(self):
        grid = self.grid()
        grid.install("bigmem", "solve_mem", FixedDurationTask(20.0, result="x"))
        result = WorkflowEngine(self.build(), grid, reactor=grid.reactor).run()
        assert result.succeeded
        assert result.completion_time == pytest.approx(5 + 20 + 2)
        assert result.node_statuses["solve_disk"] is NodeStatus.SKIPPED_OK

    def test_oom_switches_to_disk_algorithm(self):
        grid = self.grid()
        grid.install(
            "bigmem",
            "solve_mem",
            ExceptionProneTask(
                duration=20.0, checks=2, probability=1.0,
                exception_name="out_of_memory",
            ),
        )
        result = WorkflowEngine(self.build(), grid, reactor=grid.reactor).run()
        assert result.succeeded
        # prepare 5 + OOM at first check (10) + disk solve 90 + report 2.
        assert result.completion_time == pytest.approx(5 + 10 + 90 + 2)
        assert result.node_statuses["solve_fast"] is NodeStatus.EXCEPTION

    def test_crash_also_covered_by_failed_edge(self):
        grid = self.grid()
        grid.install(
            "bigmem",
            "solve_mem",
            CrashingTask(duration=20.0, crash_at=4.0, crashes=None),
        )
        result = WorkflowEngine(self.build(), grid, reactor=grid.reactor).run()
        assert result.succeeded
        # prepare 5 + two crash tries (8) + disk 90 + report 2.
        assert result.completion_time == pytest.approx(5 + 8 + 90 + 2)


class TestLongRunningSimulationScenario:
    """Section 1: a long-running simulation checkpointing periodically on an
    unreliable volunteer host, while a Condor-style reliable pool runs the
    post-processing."""

    def test_checkpoints_mask_repeated_host_crashes(self):
        grid = quiet_grid(seed=7)
        grid.add_host(UNRELIABLE("volunteer", mttf=40.0, mean_downtime=5.0))
        grid.add_host(RELIABLE("condor-pool"))
        grid.install(
            "volunteer",
            "simulate",
            CheckpointingTask(duration=120.0, checkpoints=24, overhead=0.25,
                              recovery_time=0.25),
        )
        grid.install("condor-pool", "analyse", FixedDurationTask(10.0))
        wf = (
            WorkflowBuilder("campaign")
            .program("simulate", hosts=["volunteer"])
            .program("analyse", hosts=["condor-pool"])
            .activity(
                "simulate",
                implement="simulate",
                policy=FailurePolicy.retrying(None),
            )
            .activity("analyse", implement="analyse")
            .transition("simulate", "analyse")
            .build()
        )
        result = WorkflowEngine(wf, grid, reactor=grid.reactor).run(timeout=1e7)
        assert result.succeeded
        assert result.tries["simulate"] > 1  # crashes actually happened
        # Checkpointing bounds the cost: a from-scratch strategy would need
        # E[T] = (mttf+D)(e^{F/mttf} − 1) ≈ 860s; expect far less.
        assert result.completion_time < 500.0


class TestHybridReplicationPipeline:
    """Replication for a flaky stage + workflow-level redundancy for an
    algorithm choice, combined in one DAG (Section 6's combinations)."""

    def test_pipeline_survives_everything_thrown_at_it(self):
        grid = quiet_grid(seed=11)
        for host in ("w1", "w2", "w3"):
            grid.add_host(RELIABLE(host))
        grid.add_host(RELIABLE("fastbox"))
        grid.add_host(RELIABLE("safebox"))
        # Replicated extraction stage: two replicas crash forever, one works.
        grid.install("w1", "extract", CrashingTask(duration=8.0, crash_at=1.0, crashes=None))
        grid.install("w2", "extract", FixedDurationTask(8.0, result="data"))
        grid.install("w3", "extract", CrashingTask(duration=8.0, crash_at=2.0, crashes=None))
        # Redundant transform stage: fast algorithm crashes, safe one works.
        grid.install("fastbox", "transform_fast", CrashingTask(duration=5.0, crash_at=1.0, crashes=None))
        grid.install("safebox", "transform_safe", FixedDurationTask(25.0))
        grid.install("w2", "publish", FixedDurationTask(3.0))

        wf = (
            WorkflowBuilder("hybrid")
            .program("extract", hosts=["w1", "w2", "w3"])
            .program("transform_fast", hosts=["fastbox"])
            .program("transform_safe", hosts=["safebox"])
            .program("publish", hosts=["w2"])
            .activity(
                "extract",
                implement="extract",
                policy=FailurePolicy.replica(max_tries=2),
            )
            .activity("t_fast", implement="transform_fast")
            .activity("t_safe", implement="transform_safe")
            .dummy("transformed", join=JoinMode.OR)
            .activity("publish", implement="publish")
            .fan_out("extract", "t_fast", "t_safe")
            .fan_in("transformed", "t_fast", "t_safe")
            .transition("transformed", "publish")
            .build()
        )
        result = WorkflowEngine(wf, grid, reactor=grid.reactor).run(timeout=1e7)
        assert result.succeeded
        # extract 8 (winning replica) + safe transform 25 + publish 3.
        assert result.completion_time == pytest.approx(36.0)
        assert result.node_statuses["t_fast"] is NodeStatus.FAILED

    def test_workflow_failure_reports_all_failed_tasks(self):
        grid = quiet_grid()
        grid.add_host(RELIABLE("h"))
        grid.install("h", "a", CrashingTask(duration=5.0, crash_at=1.0, crashes=None))
        grid.install("h", "b", FixedDurationTask(5.0))
        wf = (
            WorkflowBuilder("fails")
            .program("a", hosts=["h"])
            .program("b", hosts=["h"])
            .activity("first", implement="a", policy=FailurePolicy.retrying(2))
            .activity("second", implement="b")
            .transition("first", "second")
            .build()
        )
        result = WorkflowEngine(wf, grid, reactor=grid.reactor).run()
        assert result.status is WorkflowStatus.FAILED
        assert result.failed_tasks == ("first",)
        assert result.node_statuses["second"] is NodeStatus.SKIPPED_ERROR


class TestHeartbeatDetectionEndToEnd:
    """Realistic detection path: no prompt crash notification — the engine
    only learns of the crash when heartbeats stop."""

    def test_heartbeat_timeout_drives_recovery(self):
        grid = SimulatedGrid(
            seed=3,
            config=GridConfig(crash_detection="heartbeat", heartbeats=True),
        )
        grid.add_host(RELIABLE("flaky", heartbeat_period=1.0))
        grid.add_host(RELIABLE("backup", heartbeat_period=1.0))
        grid.install("flaky", "work", FixedDurationTask(50.0))
        grid.install("backup", "work", FixedDurationTask(50.0))
        inject_crash(grid.kernel, grid.host("flaky"), at=10.0, duration=1000.0)
        wf = (
            WorkflowBuilder("hb")
            .program("work", hosts=["flaky", "backup"])
            .activity(
                "work",
                implement="work",
                policy=FailurePolicy.retrying(
                    None,
                    resource_selection=__import__(
                        "repro.core.policy", fromlist=["ResourceSelection"]
                    ).ResourceSelection.ROTATE,
                ),
            )
            .build()
        )
        engine = WorkflowEngine(
            wf, grid, reactor=grid.reactor, heartbeat_timeout=5.0
        )
        result = engine.run(timeout=1e6)
        assert result.succeeded
        # Crash at 10 + detection within timeout+sweep (≤ ~7.5s) + rerun 50
        # on the rotated-to backup host.
        assert 60.0 <= result.completion_time <= 70.0
        assert result.tries["work"] == 2
