"""Exporter tests: golden renderings of the Prometheus text and Chrome
``trace_event`` formats, JSON-lines structure, and the property that
histogram bucket counts always sum to the series count (non-cumulative in
the registry, cumulative on the Prometheus wire)."""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    MetricsRegistry,
    RecordedEvent,
    SpanRecorder,
    chrome_trace,
    jsonl_lines,
    prometheus_text,
    write_chrome_trace,
    write_jsonl,
)


def small_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("jobs_total", help="jobs submitted", technique="retrying").inc()
    reg.counter("jobs_total", technique="checkpointing").inc(2)
    reg.gauge("pool_workers", help="live workers").set(4)
    hist = reg.histogram(
        "attempt_seconds",
        help="per-attempt sim seconds",
        buckets=(1.0, 10.0),
        activity="FU",
    )
    for v in (0.5, 5.0, 100.0):
        hist.observe(v)
    return reg


PROMETHEUS_GOLDEN = """\
# HELP jobs_total jobs submitted
# TYPE jobs_total counter
jobs_total{technique="retrying"} 1.0
jobs_total{technique="checkpointing"} 2.0
# HELP pool_workers live workers
# TYPE pool_workers gauge
pool_workers 4.0
# HELP attempt_seconds per-attempt sim seconds
# TYPE attempt_seconds histogram
attempt_seconds_bucket{activity="FU",le="1.0"} 1
attempt_seconds_bucket{activity="FU",le="10.0"} 2
attempt_seconds_bucket{activity="FU",le="+Inf"} 3
attempt_seconds_sum{activity="FU"} 105.5
attempt_seconds_count{activity="FU"} 3
attempt_seconds_p50{activity="FU"} 10.0
attempt_seconds_p95{activity="FU"} +Inf
attempt_seconds_p99{activity="FU"} +Inf
"""


class TestPrometheusText:
    def test_golden_rendering(self):
        assert prometheus_text(small_registry()) == PROMETHEUS_GOLDEN

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_dotted_names_and_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("sim.events", path='a"b\\c').inc()
        text = prometheus_text(reg)
        assert 'sim_events{path="a\\"b\\\\c"} 1.0' in text

    def test_infinite_gauge_value(self):
        reg = MetricsRegistry()
        reg.gauge("mttf").set(float("inf"))
        assert "mttf +Inf" in prometheus_text(reg)


def recorded_spans() -> list:
    rec = SpanRecorder()
    node = rec.interval("node.run", 0.0, 30.0, node="FU")
    rec.interval(
        "task.attempt", 0.0, 10.0, parent=node.id, node="FU", outcome="failed"
    )
    rec.interval("mc.shard", 5.0, 25.0, technique="retrying")
    return rec.spans


CHROME_GOLDEN = {
    "traceEvents": [
        {"name": "process_name", "ph": "M", "pid": 1, "args": {"name": "repro"}},
        {
            "name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
            "args": {"name": "FU"},
        },
        {
            "name": "thread_name", "ph": "M", "pid": 1, "tid": 2,
            "args": {"name": "retrying"},
        },
        {
            "name": "node.run", "cat": "node", "ph": "X",
            "ts": 0.0, "dur": 30_000_000.0, "pid": 1, "tid": 1,
            "args": {"node": "FU", "wall_seconds": 0.0},
        },
        {
            "name": "task.attempt", "cat": "task", "ph": "X",
            "ts": 0.0, "dur": 10_000_000.0, "pid": 1, "tid": 1,
            "args": {"node": "FU", "outcome": "failed", "wall_seconds": 0.0},
        },
        {
            "name": "mc.shard", "cat": "mc", "ph": "X",
            "ts": 5_000_000.0, "dur": 20_000_000.0, "pid": 1, "tid": 2,
            "args": {"technique": "retrying", "wall_seconds": 0.0},
        },
    ],
    "displayTimeUnit": "ms",
}


class TestChromeTrace:
    def test_golden_rendering(self):
        assert chrome_trace(recorded_spans()) == CHROME_GOLDEN

    def test_open_span_renders_zero_duration(self):
        rec = SpanRecorder()
        rec.begin("workflow.run")
        [event] = [
            e for e in chrome_trace(rec.spans)["traceEvents"] if e["ph"] == "X"
        ]
        assert event["dur"] == 0.0

    def test_write_round_trips_as_json(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(path, recorded_spans())
        payload = json.loads(path.read_text())
        assert payload == CHROME_GOLDEN
        assert count == len(payload["traceEvents"]) == 6


class TestJsonLines:
    def test_record_kinds_and_order(self):
        events = [RecordedEvent(at=1.0, topic="engine.node_launched",
                                detail={"node": "FU"})]
        lines = list(
            jsonl_lines(
                events=events, spans=recorded_spans(), metrics=small_registry()
            )
        )
        records = [json.loads(line) for line in lines]
        assert [r["kind"] for r in records] == [
            "event", "span", "span", "span", "metrics",
        ]
        assert records[0]["topic"] == "engine.node_launched"
        assert records[1]["name"] == "node.run"
        assert records[1]["sim_end"] == 30.0
        assert "jobs_total" in records[-1]["families"]

    def test_write_jsonl_counts_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        count = write_jsonl(path, spans=recorded_spans())
        text = path.read_text()
        assert count == 3 == len(text.splitlines())
        for line in text.splitlines():
            json.loads(line)  # every line is standalone JSON

    def test_non_finite_sim_times_stay_valid_json(self):
        events = [RecordedEvent(at=float("inf"), topic="t", detail={})]
        [line] = jsonl_lines(events=events)
        assert json.loads(line)["at"] == "inf"


BOUNDS = st.lists(
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    min_size=1,
    max_size=8,
    unique=True,
).map(lambda bs: tuple(sorted(bs)))

VALUES = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), max_size=100
)


class TestHistogramSumProperty:
    @given(bounds=BOUNDS, values=VALUES)
    @settings(max_examples=120)
    def test_bucket_counts_sum_to_count(self, bounds, values):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=bounds, technique="t")
        for v in values:
            hist.observe(v)
        # Registry invariant: non-cumulative buckets partition the
        # observations.
        assert sum(hist.counts) == hist.count == len(values)

        # Wire invariant: Prometheus buckets are cumulative, so the +Inf
        # bucket, the _count sample and the observation count all agree,
        # and the cumulative sequence is monotone.
        lines = prometheus_text(reg).splitlines()
        cumulative = [
            int(line.rsplit(" ", 1)[1])
            for line in lines
            if line.startswith("h_bucket")
        ]
        assert len(cumulative) == len(bounds) + 1
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == len(values)
        [count_line] = [ln for ln in lines if ln.startswith("h_count")]
        assert int(count_line.rsplit(" ", 1)[1]) == len(values)
