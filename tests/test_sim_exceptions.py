"""Tests for the Figure-13 exception-handling experiment model."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.exceptions_model import (
    ExceptionExperiment,
    expected_alternative,
    expected_checkpointing,
    expected_retrying,
    sample_alternative,
    sample_checkpointing,
    sample_retrying,
)
from repro.sim.stats import relative_error


class TestClosedForms:
    def test_p_zero_all_strategies_cost_f(self):
        assert expected_retrying(0.0) == 30.0
        assert expected_checkpointing(0.0) == 30.0
        assert expected_alternative(0.0) == 30.0

    def test_p_one_masking_never_finishes(self):
        assert math.isinf(expected_retrying(1.0))
        assert math.isinf(expected_checkpointing(1.0))

    def test_p_one_alternative_is_156(self):
        # The paper's bound: first check at 6 + SR at 150.
        assert expected_alternative(1.0) == pytest.approx(156.0)

    def test_alternative_bounded_for_all_p(self):
        # Bounded for every p (the masking strategies are not).  The exact
        # supremum is ~158 around p≈0.6 — the curve dips back to 156 at
        # p=1 because later checks never run once the first one fails.
        for p in np.linspace(0, 1, 21):
            assert expected_alternative(float(p)) <= 160.0

    def test_masking_strategies_blow_up_near_one(self):
        # Figure 13's divergence: at p=0.9 both masking strategies dwarf
        # the handler.
        assert expected_retrying(0.9) > 100 * expected_alternative(0.9)
        assert expected_checkpointing(0.9) > expected_alternative(0.9)

    def test_checkpointing_is_f_over_q(self):
        assert expected_checkpointing(0.4) == pytest.approx(30.0 / 0.6)

    def test_retrying_grows_faster_than_checkpointing(self):
        for p in (0.3, 0.6, 0.9):
            assert expected_retrying(p) > expected_checkpointing(p)

    def test_masking_strategies_monotone_in_p(self):
        # Only the masking strategies are monotone in p; the handler curve
        # peaks mid-range (see test_alternative_bounded_for_all_p).
        for fn in (expected_retrying, expected_checkpointing):
            values = [fn(p) for p in (0.0, 0.2, 0.4, 0.6, 0.8)]
            assert values == sorted(values)

    def test_invalid_p(self):
        with pytest.raises(SimulationError):
            expected_retrying(1.5)

    def test_custom_experiment_geometry(self):
        exp = ExceptionExperiment(
            fast_duration=10.0, checks=2, slow_duration=50.0, join_duration=1.0
        )
        # p=1: fail at first check (5) + slow (50) + join (1).
        assert expected_alternative(1.0, exp) == pytest.approx(56.0)

    def test_experiment_validation(self):
        with pytest.raises(SimulationError):
            ExceptionExperiment(fast_duration=0.0)
        with pytest.raises(SimulationError):
            ExceptionExperiment(checks=0)


class TestSamplers:
    @pytest.mark.parametrize("p", [0.0, 0.2, 0.5, 0.9, 0.99])
    def test_retry_sampler_matches_closed_form(self, p):
        mc = sample_retrying(p, runs=60_000).mean()
        assert relative_error(mc, expected_retrying(p)) < 0.03

    @pytest.mark.parametrize("p", [0.0, 0.3, 0.7, 0.95])
    def test_checkpoint_sampler_matches_closed_form(self, p):
        mc = sample_checkpointing(p, runs=60_000).mean()
        assert relative_error(mc, expected_checkpointing(p)) < 0.03

    @pytest.mark.parametrize("p", [0.0, 0.3, 0.7, 1.0])
    def test_alternative_sampler_matches_closed_form(self, p):
        mc = sample_alternative(p, runs=60_000).mean()
        assert relative_error(mc, expected_alternative(p)) < 0.02

    def test_retry_sampler_rejects_p_one(self):
        with pytest.raises(SimulationError, match="never completes"):
            sample_retrying(1.0)

    def test_checkpoint_sampler_rejects_p_one(self):
        with pytest.raises(SimulationError):
            sample_checkpointing(1.0)

    def test_alternative_sampler_support(self):
        samples = sample_alternative(0.5, runs=10_000)
        # Support: either a clean 30s run or i*6 + 150.
        valid = {30.0} | {i * 6.0 + 150.0 for i in range(1, 6)}
        assert set(np.unique(samples)).issubset(valid)

    def test_retry_sampler_high_p_is_fast(self):
        # The geometric/multinomial decomposition must not degrade with p.
        import time

        start = time.time()
        sample_retrying(0.999, runs=50_000)
        assert time.time() - start < 2.0
