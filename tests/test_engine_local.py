"""Engine tests over the LocalExecutor: real Python callables, wall time.

These prove the same engine code runs outside the simulation: task bodies
use the task-side notification API, crashes are real exceptions, and
checkpoints live in a real file store.
"""

from __future__ import annotations

import pytest

from repro.core import FailurePolicy, UserException
from repro.detection.api import TaskFailedSignal, UserExceptionSignal
from repro.engine import LocalExecutor, NodeStatus, WorkflowEngine, WorkflowStatus
from repro.reactor import RealTimeReactor
from repro.wpdl import JoinMode, WorkflowBuilder


@pytest.fixture
def rt():
    return RealTimeReactor()


@pytest.fixture
def executor(rt):
    return LocalExecutor(rt)


def run(workflow, executor, rt, timeout=30.0):
    engine = WorkflowEngine(workflow, executor, reactor=rt)
    return engine.run(timeout=timeout)


class TestHappyPath:
    def test_single_callable_task(self, executor, rt):
        executor.register("add", lambda ctx, a=0, b=0: a + b)
        wf = (
            WorkflowBuilder("w")
            .program("add", hosts=["localhost"])
            .activity(
                "sum",
                implement="add",
                inputs=[],
            )
            .build()
        )
        result = run(wf, executor, rt)
        assert result.succeeded
        assert result.variables["sum"] == 0

    def test_arguments_passed_from_inputs(self, executor, rt):
        from repro.wpdl import Parameter

        executor.register("add", lambda ctx, a, b: a + b)
        wf = (
            WorkflowBuilder("w")
            .program("add", hosts=["localhost"])
            .activity(
                "sum",
                implement="add",
                inputs=[Parameter("a", value=2), Parameter("b", value=3)],
            )
            .build()
        )
        result = run(wf, executor, rt)
        assert result.variables["sum"] == 5

    def test_pipeline_with_value_dependency(self, executor, rt):
        from repro.wpdl import Parameter

        executor.register("produce", lambda ctx: {"n": 21})
        executor.register("double", lambda ctx, n: n * 2)
        wf = (
            WorkflowBuilder("w")
            .program("produce", hosts=["localhost"])
            .program("double", hosts=["localhost"])
            .activity("p", implement="produce", outputs=["n"])
            .activity("d", implement="double", inputs=[Parameter("n", ref="n")])
            .transition("p", "d")
            .build()
        )
        result = run(wf, executor, rt)
        assert result.variables["d"] == 42


class TestFailures:
    def test_python_exception_is_task_crash(self, executor, rt):
        def boom(ctx):
            raise RuntimeError("bug in task")

        executor.register("boom", boom)
        wf = (
            WorkflowBuilder("w")
            .program("boom", hosts=["localhost"])
            .activity("t", implement="boom")
            .build()
        )
        result = run(wf, executor, rt)
        assert result.status is WorkflowStatus.FAILED
        assert any("bug in task" in tb for tb in executor.crash_tracebacks.values())

    def test_retry_eventually_succeeds(self, executor, rt):
        attempts = {"n": 0}

        def flaky(ctx):
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise TaskFailedSignal("still warming up")
            return "ready"

        executor.register("flaky", flaky)
        wf = (
            WorkflowBuilder("w")
            .program("flaky", hosts=["localhost"])
            .activity("t", implement="flaky", policy=FailurePolicy.retrying(5))
            .build()
        )
        result = run(wf, executor, rt)
        assert result.succeeded
        assert attempts["n"] == 3
        assert result.tries["t"] == 3

    def test_user_exception_routed_to_handler(self, executor, rt):
        def fast(ctx):
            ctx.raise_exception("disk_full", "tmp is full")

        executor.register("fast", fast)
        executor.register("slow", lambda ctx: "slow-result")
        wf = (
            WorkflowBuilder("w")
            .program("fast", hosts=["localhost"])
            .program("slow", hosts=["localhost"])
            .activity("FU", implement="fast")
            .activity("SR", implement="slow")
            .dummy("DJ", join=JoinMode.OR)
            .transition("FU", "DJ")
            .on_exception("FU", "disk_full", "SR")
            .transition("SR", "DJ")
            .build()
        )
        result = run(wf, executor, rt)
        assert result.succeeded
        assert result.node_statuses["FU"] is NodeStatus.EXCEPTION
        assert result.variables["SR"] == "slow-result"

    def test_raising_signal_directly_with_exception_object(self, executor, rt):
        def fast(ctx):
            exc = UserException("oom", "out of memory")
            ctx.send_exception(exc)
            raise UserExceptionSignal(exc)

        executor.register("fast", fast)
        wf = (
            WorkflowBuilder("w")
            .program("fast", hosts=["localhost"])
            .activity("t", implement="fast")
            .build()
        )
        result = run(wf, executor, rt)
        assert result.status is WorkflowStatus.FAILED
        assert result.node_statuses["t"] is NodeStatus.EXCEPTION

    def test_unregistered_executable_fails(self, executor, rt):
        wf = (
            WorkflowBuilder("w")
            .program("ghost", hosts=["localhost"])
            .activity("t", implement="ghost")
            .build()
        )
        result = run(wf, executor, rt)
        assert result.status is WorkflowStatus.FAILED


class TestCheckpointing:
    def test_checkpoint_resume_with_file_store(self, rt, tmp_path):
        from repro.ckpt.store import FileCheckpointStore

        executor = LocalExecutor(rt, store=FileCheckpointStore(tmp_path))
        progress_log = []

        def long_job(ctx, steps=4):
            start = 0
            if ctx.resuming:
                start = ctx.store.load(ctx.checkpoint_flag)["step"]
            for step in range(start, steps):
                progress_log.append(step)
                key = f"long@{ctx.job_id}@{step}"
                ctx.store.save(key, {"step": step + 1})
                ctx.task_checkpoint(key, progress=(step + 1) / steps)
                if step == 1 and not ctx.resuming:
                    raise TaskFailedSignal("crash after step 1")
            return "complete"

        executor.register("long", long_job)
        wf = (
            WorkflowBuilder("w")
            .program("long", hosts=["localhost"])
            .activity("t", implement="long", policy=FailurePolicy.retrying(3))
            .build()
        )
        result = WorkflowEngine(wf, executor, reactor=rt).run(timeout=30.0)
        assert result.succeeded
        # Steps 0,1 ran, crash; resume continues at 2 (no re-execution).
        assert progress_log == [0, 1, 2, 3]
        assert result.variables["t"] == "complete"


class TestParallelism:
    def test_parallel_branches_actually_overlap(self, executor, rt):
        import time

        executor.register("sleep", lambda ctx: time.sleep(0.15))
        wf = (
            WorkflowBuilder("w")
            .program("sleep", hosts=["localhost"])
            .dummy("split")
            .activity("x", implement="sleep")
            .activity("y", implement="sleep")
            .activity("z", implement="sleep")
            .dummy("join")
            .fan_out("split", "x", "y", "z")
            .fan_in("join", "x", "y", "z")
            .build()
        )
        start = rt.now()
        result = run(wf, executor, rt)
        elapsed = rt.now() - start
        assert result.succeeded
        assert elapsed < 0.4  # three 0.15s sleeps overlapped
