"""Estimator tests: the EWMA and Wilson primitives, the Page–Hinkley
drift detector with its golden detection bounds (a 3× MTTF shift fires
within 200 events; 10k stationary events stay silent), and the
EstimatorSuite wired to a live bus — terminal-outcome subscriptions,
host-failure attribution and dedup, drift event publication with prompt
health re-evaluation, liveness ingestion, and gauge export."""

from __future__ import annotations

import math
import random

import pytest

from repro.events import EventBus
from repro.grid import UNRELIABLE, GridConfig, SimulatedGrid
from repro.obs import (
    DRIFT_MTTF,
    ActivityEstimator,
    EstimatorSuite,
    Ewma,
    HostEstimator,
    MetricsRegistry,
    PageHinkley,
    priors_from_grid,
    wilson_interval,
)


class TestEwma:
    def test_seeds_on_first_sample_then_smooths(self):
        ewma = Ewma(alpha=0.5)
        assert ewma.value is None
        assert ewma.update(10.0) == 10.0
        assert ewma.update(20.0) == 15.0
        assert ewma.n == 2

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)
        with pytest.raises(ValueError):
            Ewma(alpha=1.5)


class TestWilsonInterval:
    def test_total_ignorance_at_zero_n(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_known_value(self):
        low, high = wilson_interval(5, 10)
        assert low == pytest.approx(0.2366, abs=1e-3)
        assert high == pytest.approx(0.7634, abs=1e-3)

    def test_interval_narrows_with_evidence(self):
        low_small, high_small = wilson_interval(3, 6)
        low_big, high_big = wilson_interval(300, 600)
        assert (high_big - low_big) < (high_small - low_small)
        assert 0.0 <= low_big <= high_big <= 1.0

    def test_stays_inside_unit_interval_at_extremes(self):
        assert wilson_interval(0, 5)[0] == 0.0
        assert wilson_interval(5, 5)[1] == 1.0


class TestPageHinkley:
    def test_stationary_unit_mean_stays_silent(self):
        rng = random.Random(1234)
        detector = PageHinkley()
        assert not any(
            detector.update(rng.expovariate(1.0)) for _ in range(10_000)
        )
        assert not detector.drifted

    def test_downward_shift_latches_once(self):
        detector = PageHinkley()
        edges = [detector.update(1 / 3) for _ in range(200)]
        assert detector.drifted and detector.direction == "down"
        assert edges.count(True) == 1  # the latch edge fires exactly once
        assert detector.drift_at is not None

    def test_upward_shift_detected_too(self):
        detector = PageHinkley()
        for _ in range(200):
            detector.update(3.0)
        assert detector.drifted and detector.direction == "up"

    def test_min_observations_guard(self):
        detector = PageHinkley(min_observations=5, threshold=0.1)
        assert not any(detector.update(0.0) for _ in range(4))
        assert detector.update(0.0)

    def test_reset_rearms(self):
        detector = PageHinkley()
        for _ in range(200):
            detector.update(1 / 3)
        detector.reset()
        assert not detector.drifted and detector.statistic() == 0.0
        assert detector.n == 0


class TestDriftGolden:
    """The acceptance bounds the CI telemetry-smoke job pins."""

    PRIOR_MTTF = 100.0

    def feed(self, estimator, rng, mean, count):
        at = estimator.last_failure_at or 0.0
        for i in range(count):
            at += rng.expovariate(1.0 / mean)
            if estimator.record_failure(at):
                return i + 1
        return None

    def test_three_fold_mttf_shift_fires_within_200_events(self):
        estimator = HostEstimator("h1", prior_mttf=self.PRIOR_MTTF)
        fired_after = self.feed(
            estimator, random.Random(42), self.PRIOR_MTTF / 3.0, 200
        )
        assert fired_after is not None and fired_after <= 200
        assert estimator.detector.direction == "down"

    def test_ten_thousand_stationary_events_stay_silent(self):
        estimator = HostEstimator("h1", prior_mttf=self.PRIOR_MTTF)
        assert (
            self.feed(estimator, random.Random(42), self.PRIOR_MTTF, 10_000)
            is None
        )
        assert not estimator.detector.drifted
        # The observed EWMA sits near the prior, as it should.
        assert estimator.mttf.value == pytest.approx(
            self.PRIOR_MTTF, rel=0.5
        )

    def test_unknown_prior_never_feeds_the_detector(self):
        estimator = HostEstimator("h1")  # prior_mttf=inf
        assert self.feed(estimator, random.Random(42), 1.0, 1000) is None
        assert estimator.detector.n == 0
        assert estimator.failures == 1000


class TestHostEstimator:
    def test_downtime_from_suspected_recovered_spans(self):
        estimator = HostEstimator("h1")
        estimator.record_suspected(10.0)
        estimator.record_suspected(12.0)  # already suspected: no restart
        estimator.record_recovered(25.0)
        assert estimator.downtime.value == 15.0
        estimator.record_recovered(30.0)  # unmatched: ignored
        assert estimator.downtime.n == 1

    def test_snapshot_shape(self):
        estimator = HostEstimator("h1", prior_mttf=50.0, prior_downtime=2.0)
        estimator.record_failure(10.0)
        estimator.record_failure(40.0)
        snap = estimator.snapshot()
        assert snap["host"] == "h1"
        assert snap["failures"] == 2
        assert snap["mttf_observed"] == 30.0
        assert snap["mttf_prior"] == 50.0
        assert snap["drifted"] is False


class _Payload:
    """Duck-typed stand-in for the engine's AttemptOutcome payloads."""

    def __init__(self, **kw):
        self.workflow_id = kw.get("workflow_id", "wf-1")
        self.activity = kw.get("activity", "task")
        self.reason = kw.get("reason", "")
        self.hostname = kw.get("hostname", "")
        self.at = kw.get("at", 0.0)


class _HealthSpy:
    def __init__(self):
        self.evaluated_at: list[float] = []

    def evaluate(self, at):
        self.evaluated_at.append(at)


class TestEstimatorSuite:
    def test_terminal_topics_feed_activity_estimators(self):
        bus = EventBus()
        suite = EstimatorSuite(bus)
        bus.publish("task.done.wf-1", _Payload())
        bus.publish("task.failed.wf-1", _Payload(reason="exit-code"))
        bus.publish("task.exception.wf-1", _Payload())
        bus.publish("task.active.wf-1", _Payload())  # non-terminal: ignored
        estimator = suite.activities[("wf-1", "task")]
        assert estimator.attempts == 3 and estimator.failures == 2
        assert estimator.failure_probability() == pytest.approx(2 / 3)

    def test_host_failures_only_from_host_reasons(self):
        bus = EventBus()
        suite = EstimatorSuite(bus)
        bus.publish(
            "task.failed.wf-1",
            _Payload(reason="exit-code", hostname="h1", at=5.0),
        )
        assert "h1" not in suite.hosts  # a task's own exit is not host MTTF
        bus.publish(
            "task.failed.wf-1",
            _Payload(reason="host-crashed", hostname="h1", at=9.0),
        )
        assert suite.hosts["h1"].failures == 1

    def test_replica_co_crash_dedupes_to_one_failure(self):
        suite = EstimatorSuite()
        suite.record_host_failure("h1", 10.0)
        suite.record_host_failure("h1", 10.0)  # replica, same instant
        suite.record_host_failure("h1", 30.0)
        assert suite.hosts["h1"].failures == 2
        assert suite.hosts["h1"].mttf.value == 20.0

    def test_drift_latch_publishes_and_reevaluates_health_promptly(self):
        bus = EventBus()
        drift_events = []
        bus.subscribe("obs.drift.*", lambda t, p: drift_events.append((t, p)))
        health = _HealthSpy()
        suite = EstimatorSuite(
            bus, priors={"h1": (100.0, 0.0)}, health=health
        )
        at, fired_at = 0.0, None
        for _ in range(300):
            at += 10.0  # 10x faster than the catalog promises
            suite.record_host_failure("h1", at)
            if suite.drift_events:
                fired_at = at
                break
        assert fired_at is not None
        ((topic, payload),) = drift_events
        assert topic == DRIFT_MTTF
        assert payload["host"] == "h1" and payload["prior_mttf"] == 100.0
        assert payload["direction"] == "down"
        # Health re-evaluated exactly once — on the latch, not per failure.
        assert health.evaluated_at == [fired_at]
        # Later failures don't re-publish a latched detector.
        suite.record_host_failure("h1", at + 10.0)
        assert suite.drift_events == 1 and len(drift_events) == 1
        assert suite.drifted_hosts() == ["h1"]

    def test_detach_stops_listening(self):
        bus = EventBus()
        suite = EstimatorSuite(bus)
        suite.detach()
        bus.publish("task.done.wf-1", _Payload())
        assert not suite.activities

    def test_ingest_liveness_folds_monitor_counters(self):
        suite = EstimatorSuite()
        suite.ingest_liveness(
            [{"host": "h1", "beats": 40, "suspicions": 4, "suspected": False}]
        )
        assert suite.hosts["h1"].heartbeat_loss_rate() == pytest.approx(0.1)

    def test_max_failure_probability_is_wilson_lower_bound(self):
        suite = EstimatorSuite()
        flaky = suite.activity("wf-1", "flaky")
        for _ in range(30):
            flaky.record("failed")
        steady = suite.activity("wf-1", "steady")
        for _ in range(30):
            steady.record("done")
        low, _high = wilson_interval(30, 30)
        assert suite.max_failure_probability() == pytest.approx(low)

    def test_export_publishes_gauges(self):
        suite = EstimatorSuite(priors={"h1": (100.0, 0.0)})
        suite.record_host_failure("h1", 10.0)
        suite.record_host_failure("h1", 40.0)
        activity = suite.activity("wf-1", "task")
        activity.record("failed")
        activity.record("done")
        registry = MetricsRegistry()
        suite.export(registry)
        assert registry.value("obs_host_failures_total", host="h1") == 2.0
        assert registry.value("obs_host_mttf_observed", host="h1") == 30.0
        assert registry.value("obs_host_mttf_prior", host="h1") == 100.0
        assert registry.value("obs_host_drift", host="h1") == 0.0
        labels = {"workflow_id": "wf-1", "activity": "task"}
        assert registry.value("obs_attempts_total", **labels) == 2.0
        assert registry.value(
            "obs_attempt_failure_probability", **labels
        ) == pytest.approx(0.5)
        low, high = wilson_interval(1, 2)
        assert registry.value(
            "obs_attempt_failure_wilson_low", **labels
        ) == pytest.approx(low)
        assert registry.value(
            "obs_attempt_failure_wilson_high", **labels
        ) == pytest.approx(high)


class TestPriorsFromGrid:
    def test_reads_host_specs(self):
        grid = SimulatedGrid(config=GridConfig(heartbeats=False))
        grid.add_host(UNRELIABLE("h1", mttf=120.0, mean_downtime=6.0))
        priors = priors_from_grid(grid)
        assert priors["h1"] == (120.0, 6.0)
        suite = EstimatorSuite(priors=priors)
        assert suite.host("h1").prior_mttf == 120.0
        assert math.isinf(suite.host("h2").prior_mttf)  # uncatalogued
