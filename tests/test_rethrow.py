"""Tests for exception translation (<Rethrow>) across all layers."""

from __future__ import annotations

import pytest

from repro.core import FailurePolicy
from repro.engine import NodeStatus, WorkflowEngine, WorkflowStatus
from repro.errors import ParseError, SpecificationError
from repro.grid import (
    RELIABLE,
    ExceptionProneTask,
    FixedDurationTask,
    GridConfig,
    SimulatedGrid,
)
from repro.wpdl import (
    JoinMode,
    Rethrow,
    WorkflowBuilder,
    parse_wpdl,
    serialize_wpdl,
)
from repro.wpdl.schema import check_vocabulary


def translation_workflow(*rethrows: Rethrow):
    return (
        WorkflowBuilder("rethrow")
        .program("fast", hosts=["u1"])
        .program("slow", hosts=["r1"])
        .activity("FU", implement="fast", rethrows=list(rethrows))
        .activity("SR", implement="slow")
        .dummy("DJ", join=JoinMode.OR)
        .transition("FU", "DJ")
        .on_exception("FU", "disk_full", "SR")
        .transition("SR", "DJ")
        .build()
    )


def grid_raising(exception_name: str) -> SimulatedGrid:
    grid = SimulatedGrid(config=GridConfig(heartbeats=False))
    grid.add_host(RELIABLE("u1"))
    grid.add_host(RELIABLE("r1"))
    grid.install(
        "u1",
        "fast",
        ExceptionProneTask(
            duration=30.0, checks=5, probability=1.0,
            exception_name=exception_name,
        ),
    )
    grid.install("r1", "slow", FixedDurationTask(150.0))
    return grid


class TestModel:
    def test_requires_pattern_and_name(self):
        with pytest.raises(SpecificationError):
            Rethrow("", "x")
        with pytest.raises(SpecificationError):
            Rethrow("x", "")

    def test_xml_roundtrip(self):
        wf = translation_workflow(Rethrow("ENOSPC*", "disk_full"))
        text = serialize_wpdl(wf)
        assert 'Rethrow on="ENOSPC*" as="disk_full"' in text.replace("'", '"')
        assert parse_wpdl(text) == wf
        assert check_vocabulary(text) == []

    def test_parse_requires_both_attributes(self):
        with pytest.raises(ParseError, match="Rethrow"):
            parse_wpdl(
                "<Workflow name='w'><Activity name='a'>"
                "<Rethrow on='x'/></Activity></Workflow>"
            )


class TestEngineTranslation:
    def test_translated_exception_reaches_handler(self):
        wf = translation_workflow(Rethrow("ENOSPC*", "disk_full"))
        grid = grid_raising("ENOSPC_tmp")
        result = WorkflowEngine(wf, grid, reactor=grid.reactor).run()
        assert result.succeeded
        assert result.node_statuses["FU"] is NodeStatus.EXCEPTION
        assert result.node_statuses["SR"] is NodeStatus.DONE

    def test_original_name_preserved_in_data(self):
        wf = translation_workflow(Rethrow("ENOSPC*", "disk_full"))
        grid = grid_raising("ENOSPC_tmp")
        engine = WorkflowEngine(wf, grid, reactor=grid.reactor)
        engine.run()
        exc = engine.instance.node("FU").exception
        assert exc.name == "disk_full"
        assert exc.data["original_exception"] == "ENOSPC_tmp"

    def test_most_specific_translation_wins(self):
        wf = translation_workflow(
            Rethrow("ENOSPC*", "disk_full"),
            Rethrow("ENOSPC_quota", "quota_exceeded"),
        )
        grid = grid_raising("ENOSPC_quota")
        engine = WorkflowEngine(wf, grid, reactor=grid.reactor)
        result = engine.run()
        # The exact-name translation beats the glob: quota_exceeded, which
        # no handler edge catches, so the workflow fails.
        assert result.status is WorkflowStatus.FAILED
        assert engine.instance.node("FU").exception.name == "quota_exceeded"

    def test_non_matching_exception_untranslated(self):
        wf = translation_workflow(Rethrow("ENOSPC*", "disk_full"))
        grid = grid_raising("oom")
        result = WorkflowEngine(wf, grid, reactor=grid.reactor).run()
        assert result.status is WorkflowStatus.FAILED  # oom unhandled

    def test_no_rethrows_passthrough(self):
        wf = translation_workflow()
        grid = grid_raising("disk_full")
        result = WorkflowEngine(wf, grid, reactor=grid.reactor).run()
        assert result.succeeded


class TestMaskedExceptionTranslation:
    def test_translation_applies_after_masking_budget_exhausted(self):
        # retry_on_exception masks twice, then the exception escalates and
        # must still be translated for workflow-level routing.
        wf = (
            WorkflowBuilder("masked")
            .program("fast", hosts=["u1"])
            .program("slow", hosts=["r1"])
            .activity(
                "FU",
                implement="fast",
                policy=FailurePolicy(max_tries=2, retry_on_exception=True),
                rethrows=[Rethrow("ENOSPC*", "disk_full")],
            )
            .activity("SR", implement="slow")
            .dummy("DJ", join=JoinMode.OR)
            .transition("FU", "DJ")
            .on_exception("FU", "disk_full", "SR")
            .transition("SR", "DJ")
            .build()
        )
        grid = grid_raising("ENOSPC_tmp")
        result = WorkflowEngine(wf, grid, reactor=grid.reactor).run()
        assert result.succeeded
        assert result.tries["FU"] == 2
        assert result.node_statuses["SR"] is NodeStatus.DONE
